//! Round-trip time estimation and retransmission timeout (RFC 6298).
//!
//! Samples come from the timestamp option (`now - tsecr`), which makes every
//! ACK a valid sample even during retransmission (Karn's problem does not
//! arise with timestamps). The RTO follows the classic
//! `SRTT + max(G, 4·RTTVAR)` recipe with exponential backoff, clamped to
//! `[min_rto, max_rto]` — Linux uses a 200 ms floor, which matters at the
//! paper's millisecond RTTs, so that is our default too.

use simbase::SimDuration;

/// Smoothed RTT state and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    /// Most recent raw sample.
    latest: Option<SimDuration>,
    /// Smallest sample ever seen (base RTT; used by delay-based CC).
    min_rtt: Option<SimDuration>,
    /// Current backoff multiplier (power of two).
    backoff: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }
}

impl RttEstimator {
    /// Create with explicit RTO clamps.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            latest: None,
            min_rtt: None,
            backoff: 0,
            min_rto,
            max_rto,
        }
    }

    /// Incorporate a sample (RFC 6298 §2) and reset backoff — a valid
    /// sample proves the path is alive.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        self.latest = Some(rtt);
        self.min_rtt = Some(match self.min_rtt {
            None => rtt,
            Some(m) => m.min(rtt),
        });
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + err / 4;
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
        self.backoff = 0;
    }

    /// Current smoothed RTT (none before the first sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Minimum RTT observed (base RTT).
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Current mean deviation estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            // Before any sample: 1 s (RFC 6298 §2.1).
            None => SimDuration::from_secs(1),
            Some(srtt) => srtt + (self.rttvar * 4).max(SimDuration::from_millis(1)),
        };
        let backed_off = base.saturating_mul(1u64 << self.backoff.min(16));
        backed_off.clamp(self.min_rto, self.max_rto)
    }

    /// Double the RTO after a timeout (RFC 6298 §5.5).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Current backoff exponent (diagnostics).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        e.on_sample(MS(100));
        assert_eq!(e.srtt(), Some(MS(100)));
        assert_eq!(e.rttvar(), MS(50));
        // RTO = 100 + 4*50 = 300ms.
        assert_eq!(e.rto(), MS(300));
    }

    #[test]
    fn smoothing_converges_on_constant_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.on_sample(MS(80));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt >= MS(79) && srtt <= MS(81), "srtt={srtt}");
        // rttvar decays towards 0, so RTO approaches the 200ms floor.
        assert_eq!(e.rto(), MS(200));
    }

    #[test]
    fn variance_rises_on_jitter() {
        let mut e = RttEstimator::default();
        e.on_sample(MS(50));
        let rto_stable = e.rto();
        e.on_sample(MS(250));
        assert!(e.rto() > rto_stable, "jitter must inflate RTO");
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::default();
        e.on_sample(MS(100)); // RTO 300ms
        e.on_timeout();
        assert_eq!(e.rto(), MS(600));
        e.on_timeout();
        assert_eq!(e.rto(), MS(1200));
        e.on_sample(MS(100));
        // rttvar decayed: 3/4·50 + 1/4·0 = 37.5 ms -> RTO 100 + 150 = 250.
        assert_eq!(e.rto(), MS(250));
        assert_eq!(e.backoff(), 0);
    }

    #[test]
    fn rto_clamps_to_bounds() {
        let mut e = RttEstimator::new(MS(200), SimDuration::from_secs(2));
        e.on_sample(MS(1)); // tiny RTT -> floor
        assert_eq!(e.rto(), MS(200));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(2));
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::default();
        e.on_sample(MS(30));
        e.on_sample(MS(10));
        e.on_sample(MS(50));
        assert_eq!(e.min_rtt(), Some(MS(10)));
        assert_eq!(e.latest(), Some(MS(50)));
    }
}
