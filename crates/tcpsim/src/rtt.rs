//! Round-trip time estimation and retransmission timeout (RFC 6298).
//!
//! Samples come from the timestamp option (`now - tsecr`), which makes every
//! ACK a valid sample even during retransmission (Karn's problem does not
//! arise with timestamps). The RTO follows the classic
//! `SRTT + max(G, 4·RTTVAR)` recipe with exponential backoff, clamped to
//! `[min_rto, max_rto]` — Linux uses a 200 ms floor, which matters at the
//! paper's millisecond RTTs, so that is our default too.
//!
//! The base-RTT estimate is a *windowed* minimum (Linux `minmax`-style):
//! a lifetime minimum would go stale forever after a fault-induced reroute
//! raises the propagation delay, feeding delay-based controllers (wVegas)
//! a base RTT the path can no longer achieve and making them see permanent
//! phantom queueing. Samples older than [`RttEstimator::min_rtt_window`]
//! are expired from the filter.

use simbase::{SimDuration, SimTime};

/// Default horizon for the windowed minimum RTT: long enough to survive
/// queue-draining lulls at the paper's millisecond RTTs, short enough to
/// re-learn the base RTT within seconds of a reroute (Linux's TCP min_rtt
/// filter uses 10 s).
pub const DEFAULT_MIN_RTT_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Smoothed RTT state and RTO computation.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    /// Most recent raw sample.
    latest: Option<SimDuration>,
    /// Windowed-minimum filter for the base RTT: a deque of
    /// `(sample_time, rtt)` kept ascending in both fields, so the front is
    /// always the minimum over the window and the back the newest sample.
    min_filter: std::collections::VecDeque<(SimTime, SimDuration)>,
    /// Horizon of the windowed minimum.
    min_rtt_window: SimDuration,
    /// Current backoff multiplier (power of two).
    backoff: u32,
    min_rto: SimDuration,
    max_rto: SimDuration,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new(SimDuration::from_millis(200), SimDuration::from_secs(60))
    }
}

impl RttEstimator {
    /// Create with explicit RTO clamps.
    pub fn new(min_rto: SimDuration, max_rto: SimDuration) -> Self {
        assert!(min_rto <= max_rto);
        RttEstimator {
            srtt: None,
            rttvar: SimDuration::ZERO,
            latest: None,
            min_filter: std::collections::VecDeque::new(),
            min_rtt_window: DEFAULT_MIN_RTT_WINDOW,
            backoff: 0,
            min_rto,
            max_rto,
        }
    }

    /// Set the windowed-minimum horizon (builder style).
    pub fn with_min_rtt_window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "min_rtt window must be positive");
        self.min_rtt_window = window;
        self
    }

    /// The configured windowed-minimum horizon.
    pub fn min_rtt_window(&self) -> SimDuration {
        self.min_rtt_window
    }

    /// Incorporate a sample taken at `now` (RFC 6298 §2) and reset
    /// backoff — a valid sample proves the path is alive.
    pub fn on_sample(&mut self, now: SimTime, rtt: SimDuration) {
        self.latest = Some(rtt);
        // Windowed minimum: expire samples beyond the horizon, then drop
        // every queued sample >= the new one (it can never be the minimum
        // while the newer, smaller sample is in the window). Both fields of
        // the deque stay ascending, so the front is the window minimum.
        while self
            .min_filter
            .front()
            .is_some_and(|&(t, _)| now.saturating_since(t) > self.min_rtt_window)
        {
            self.min_filter.pop_front();
        }
        while self.min_filter.back().is_some_and(|&(_, r)| r >= rtt) {
            self.min_filter.pop_back();
        }
        self.min_filter.push_back((now, rtt));
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                // RTTVAR = 3/4 RTTVAR + 1/4 |SRTT - R|
                let err = if srtt >= rtt { srtt - rtt } else { rtt - srtt };
                self.rttvar = (self.rttvar * 3) / 4 + err / 4;
                // SRTT = 7/8 SRTT + 1/8 R
                self.srtt = Some((srtt * 7) / 8 + rtt / 8);
            }
        }
        self.backoff = 0;
    }

    /// Current smoothed RTT (none before the first sample).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Most recent raw sample.
    pub fn latest(&self) -> Option<SimDuration> {
        self.latest
    }

    /// Minimum RTT over the configured window (base RTT). Unlike a lifetime
    /// minimum, this re-learns the base RTT after a reroute: pre-fault
    /// samples age out of the filter.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_filter.front().map(|&(_, r)| r)
    }

    /// Current mean deviation estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// The retransmission timeout, including backoff.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            // Before any sample: 1 s (RFC 6298 §2.1).
            None => SimDuration::from_secs(1),
            Some(srtt) => srtt + (self.rttvar * 4).max(SimDuration::from_millis(1)),
        };
        let backed_off = base.saturating_mul(1u64 << self.backoff.min(16));
        backed_off.clamp(self.min_rto, self.max_rto)
    }

    /// Double the RTO after a timeout (RFC 6298 §5.5).
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Current backoff exponent (diagnostics).
    pub fn backoff(&self) -> u32 {
        self.backoff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

    /// Feed a sample at time `at_ms` milliseconds.
    fn sample(e: &mut RttEstimator, at_ms: u64, rtt: SimDuration) {
        e.on_sample(SimTime::from_millis(at_ms), rtt);
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert_eq!(e.srtt(), None);
        assert_eq!(e.rto(), SimDuration::from_secs(1));
        sample(&mut e, 0, MS(100));
        assert_eq!(e.srtt(), Some(MS(100)));
        assert_eq!(e.rttvar(), MS(50));
        // RTO = 100 + 4*50 = 300ms.
        assert_eq!(e.rto(), MS(300));
    }

    #[test]
    fn smoothing_converges_on_constant_rtt() {
        let mut e = RttEstimator::default();
        for i in 0..100 {
            sample(&mut e, i * 10, MS(80));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt >= MS(79) && srtt <= MS(81), "srtt={srtt}");
        // rttvar decays towards 0, so RTO approaches the 200ms floor.
        assert_eq!(e.rto(), MS(200));
    }

    #[test]
    fn variance_rises_on_jitter() {
        let mut e = RttEstimator::default();
        sample(&mut e, 0, MS(50));
        let rto_stable = e.rto();
        sample(&mut e, 50, MS(250));
        assert!(e.rto() > rto_stable, "jitter must inflate RTO");
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::default();
        sample(&mut e, 0, MS(100)); // RTO 300ms
        e.on_timeout();
        assert_eq!(e.rto(), MS(600));
        e.on_timeout();
        assert_eq!(e.rto(), MS(1200));
        sample(&mut e, 1000, MS(100));
        // rttvar decayed: 3/4·50 + 1/4·0 = 37.5 ms -> RTO 100 + 150 = 250.
        assert_eq!(e.rto(), MS(250));
        assert_eq!(e.backoff(), 0);
    }

    #[test]
    fn rto_clamps_to_bounds() {
        let mut e = RttEstimator::new(MS(200), SimDuration::from_secs(2));
        sample(&mut e, 0, MS(1)); // tiny RTT -> floor
        assert_eq!(e.rto(), MS(200));
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.rto(), SimDuration::from_secs(2));
    }

    #[test]
    fn min_rtt_tracks_floor() {
        let mut e = RttEstimator::default();
        sample(&mut e, 0, MS(30));
        sample(&mut e, 10, MS(10));
        sample(&mut e, 20, MS(50));
        assert_eq!(e.min_rtt(), Some(MS(10)));
        assert_eq!(e.latest(), Some(MS(50)));
    }

    #[test]
    fn min_rtt_expires_after_reroute() {
        // Regression: min_rtt was a lifetime minimum, so after a
        // fault-induced reroute onto a longer path the base RTT stayed
        // stale forever and delay-based CC saw phantom queueing. With the
        // windowed filter the pre-reroute sample ages out.
        let mut e = RttEstimator::default().with_min_rtt_window(SimDuration::from_secs(2));
        sample(&mut e, 0, MS(10)); // short path
        assert_eq!(e.min_rtt(), Some(MS(10)));
        // Reroute: every sample now takes the 40 ms path.
        sample(&mut e, 500, MS(40));
        assert_eq!(e.min_rtt(), Some(MS(10)), "still inside the window");
        sample(&mut e, 2_600, MS(40));
        assert_eq!(
            e.min_rtt(),
            Some(MS(40)),
            "the 10 ms sample is past the 2 s horizon and must expire"
        );
    }

    #[test]
    fn min_rtt_window_keeps_minimum_among_live_samples() {
        // The filter must return the smallest *unexpired* sample, not just
        // the latest: a recent low reading survives later higher ones.
        let mut e = RttEstimator::default().with_min_rtt_window(SimDuration::from_secs(2));
        sample(&mut e, 0, MS(30));
        sample(&mut e, 100, MS(12));
        sample(&mut e, 200, MS(25));
        sample(&mut e, 300, MS(50));
        assert_eq!(e.min_rtt(), Some(MS(12)));
        // At 2.15 s the 12 ms sample (taken at 0.1 s) is expired but the
        // 25 ms one (taken at 0.2 s) is still inside the 2 s window.
        sample(&mut e, 2_150, MS(60));
        assert_eq!(e.min_rtt(), Some(MS(25)));
    }

    #[test]
    fn default_window_matches_linux_style_horizon() {
        let e = RttEstimator::default();
        assert_eq!(e.min_rtt_window(), SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "min_rtt window must be positive")]
    fn zero_window_rejected() {
        let _ = RttEstimator::default().with_min_rtt_window(SimDuration::ZERO);
    }
}
