//! Numeric abstraction for the simplex solver.
//!
//! The solver is generic over [`LpNum`] so the same pivoting code runs in
//! fast `f64` (production) and exact [`Rational`] arithmetic (tests — the
//! property suite checks the float solver against the exact one on random
//! LPs, which is how we trust the float tolerances).

use std::fmt;

/// The field operations the simplex needs.
pub trait LpNum: Clone + PartialEq + PartialOrd + fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Addition.
    fn add(&self, o: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, o: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, o: &Self) -> Self;
    /// Division (caller guarantees the divisor is nonzero-ish).
    fn div(&self, o: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// Is this value strictly positive beyond numerical noise?
    fn gt_zero(&self) -> bool;
    /// Is this value zero up to numerical noise?
    fn near_zero(&self) -> bool;
    /// Convert from an f64 (for model coefficients).
    fn from_f64(v: f64) -> Self;
    /// Convert to f64 (for reporting).
    fn to_f64(&self) -> f64;
}

/// Pivot tolerance for floating point.
pub const F64_EPS: f64 = 1e-9;

impl LpNum for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, o: &Self) -> Self {
        self + o
    }
    fn sub(&self, o: &Self) -> Self {
        self - o
    }
    fn mul(&self, o: &Self) -> Self {
        self * o
    }
    fn div(&self, o: &Self) -> Self {
        self / o
    }
    fn neg(&self) -> Self {
        -self
    }
    fn gt_zero(&self) -> bool {
        *self > F64_EPS
    }
    fn near_zero(&self) -> bool {
        self.abs() <= F64_EPS
    }
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

/// An exact rational number over `i128` with canonical form
/// (gcd-reduced, positive denominator).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// Construct `num/den`, reducing to canonical form. Panics on zero
    /// denominator or overflow.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "zero denominator");
        let g = gcd(num, den).max(1);
        let sign = if den < 0 { -1 } else { 1 };
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// An integer as a rational.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }

    /// Numerator (canonical form).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (canonical form, always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
        // Cross-multiply; denominators are positive in canonical form.
        let lhs = self.num.checked_mul(o.den).expect("rational overflow"); // simlint: allow(unwrap, reason = "exact arithmetic cannot continue after overflow; fail loudly")
        let rhs = o.num.checked_mul(self.den).expect("rational overflow"); // simlint: allow(unwrap, reason = "exact arithmetic cannot continue after overflow; fail loudly")
        lhs.partial_cmp(&rhs)
    }
}

impl LpNum for Rational {
    fn zero() -> Self {
        Rational::from_int(0)
    }
    fn one() -> Self {
        Rational::from_int(1)
    }
    fn add(&self, o: &Self) -> Self {
        let num = self
            .num
            .checked_mul(o.den)
            .and_then(|a| o.num.checked_mul(self.den).and_then(|b| a.checked_add(b)))
            .expect("rational overflow"); // simlint: allow(unwrap, reason = "exact arithmetic cannot continue after overflow; fail loudly")
        let den = self.den.checked_mul(o.den).expect("rational overflow"); // simlint: allow(unwrap, reason = "exact arithmetic cannot continue after overflow; fail loudly")
        Rational::new(num, den)
    }
    fn sub(&self, o: &Self) -> Self {
        self.add(&o.neg())
    }
    fn mul(&self, o: &Self) -> Self {
        // Cross-reduce first to keep magnitudes small.
        let g1 = gcd(self.num, o.den).max(1);
        let g2 = gcd(o.num, self.den).max(1);
        let num = (self.num / g1)
            .checked_mul(o.num / g2)
            .expect("rational overflow"); // simlint: allow(unwrap, reason = "exact arithmetic cannot continue after overflow; fail loudly")
        let den = (self.den / g2)
            .checked_mul(o.den / g1)
            .expect("rational overflow"); // simlint: allow(unwrap, reason = "exact arithmetic cannot continue after overflow; fail loudly")
        Rational::new(num, den)
    }
    fn div(&self, o: &Self) -> Self {
        assert!(o.num != 0, "division by zero rational");
        self.mul(&Rational::new(o.den, o.num))
    }
    fn neg(&self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
    fn gt_zero(&self) -> bool {
        self.num > 0
    }
    fn near_zero(&self) -> bool {
        self.num == 0
    }
    fn from_f64(v: f64) -> Self {
        // Exact conversion for the dyadic rationals our models use; general
        // f64s are approximated with denominator 10^9.
        assert!(v.is_finite(), "non-finite coefficient");
        if v == v.trunc() && v.abs() < 1e18 {
            return Rational::from_int(v as i64);
        }
        Rational::new((v * 1e9).round() as i128, 1_000_000_000)
    }
    fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form() {
        let r = Rational::new(6, -4);
        assert_eq!(r.numer(), -3);
        assert_eq!(r.denom(), 2);
        assert_eq!(format!("{r}"), "-3/2");
        assert_eq!(format!("{}", Rational::from_int(5)), "5");
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2);
        let b = Rational::new(1, 3);
        assert_eq!(a.add(&b), Rational::new(5, 6));
        assert_eq!(a.sub(&b), Rational::new(1, 6));
        assert_eq!(a.mul(&b), Rational::new(1, 6));
        assert_eq!(a.div(&b), Rational::new(3, 2));
        assert_eq!(a.neg(), Rational::new(-1, 2));
    }

    #[test]
    fn comparisons() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        assert!(a < b);
        assert!(b.gt_zero());
        assert!(!Rational::zero().gt_zero());
        assert!(Rational::zero().near_zero());
        assert!(a.neg() < Rational::zero());
    }

    #[test]
    fn f64_conversion() {
        assert_eq!(Rational::from_f64(40.0), Rational::from_int(40));
        assert_eq!(Rational::from_f64(0.5), Rational::new(1, 2));
        assert!((Rational::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn f64_lpnum_tolerances() {
        assert!(1e-8.gt_zero());
        assert!(!1e-10.gt_zero());
        assert!(1e-10.near_zero());
        assert!(!1e-8.near_zero());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
