//! Max-throughput LP extraction from a topology and path set.
//!
//! This is the paper's Section 2 made executable: given the paths MPTCP may
//! use, every link shared by one or more of them yields a capacity
//! constraint `Σ x_i ≤ c`, and the optimum of `max Σ x_i` is the ground
//! truth each congestion-control algorithm is measured against. Because the
//! LP is built from the *same* `netsim::Topology` object the packets flow
//! through, the baseline can never drift from the simulated network.

use crate::model::{LinearProgram, Sense};
use crate::num::F64_EPS;
use crate::simplex::{solve, LpOutcome};
use netsim::{LinkId, Path, SharingAnalysis, Topology};
use simbase::Bandwidth;

/// The solved max-throughput problem for a path set.
#[derive(Debug, Clone)]
pub struct MaxThroughput {
    /// The LP that was solved (inspectable / printable).
    pub lp: LinearProgram,
    /// Optimal rate per path, Mbps.
    pub per_path_mbps: Vec<f64>,
    /// Optimal total, Mbps.
    pub total_mbps: f64,
    /// Links whose capacity constraint is tight at the optimum.
    pub tight_links: Vec<LinkId>,
    /// For every constrained link: (link, paths using it, capacity).
    pub link_constraints: Vec<(LinkId, Vec<usize>, Bandwidth)>,
}

/// Build the max-throughput LP for `paths` over `topo`.
///
/// One variable per path (rate in Mbps); one `≤` constraint per link used
/// by at least one path. Links used by a single path become that path's raw
/// capacity bound; links shared by several paths are exactly the paper's
/// coupling constraints.
pub fn max_throughput_lp(
    topo: &Topology,
    paths: &[Path],
) -> (LinearProgram, Vec<(LinkId, Vec<usize>, Bandwidth)>) {
    let mut lp = LinearProgram::new();
    for (i, _) in paths.iter().enumerate() {
        lp.add_var(format!("x{}", i + 1), 1.0);
    }
    let analysis = SharingAnalysis::new(paths);
    let mut link_constraints = Vec::new();
    for (link, users) in &analysis.link_users {
        let cap = topo.link(*link).capacity;
        let terms: Vec<(usize, f64)> = users.iter().map(|&u| (u, 1.0)).collect();
        let a = topo.node(topo.link(*link).a).name.clone();
        let b = topo.node(topo.link(*link).b).name.clone();
        lp.add_constraint(format!("{a}-{b}"), &terms, Sense::Le, cap.as_mbps_f64());
        link_constraints.push((*link, users.clone(), cap));
    }
    (lp, link_constraints)
}

/// Solve the max-throughput problem.
///
/// Panics if the LP is infeasible or unbounded — impossible for a
/// well-formed capacity problem (0 is always feasible; every variable is
/// capped by its path's links).
pub fn solve_max_throughput(topo: &Topology, paths: &[Path]) -> MaxThroughput {
    assert!(!paths.is_empty(), "need at least one path");
    let (lp, link_constraints) = max_throughput_lp(topo, paths);
    match solve::<f64>(&lp) {
        LpOutcome::Optimal { objective, x } => {
            let tight_links = link_constraints
                .iter()
                .enumerate()
                .filter(|(ci, _)| lp.slack(*ci, &x).abs() <= 1e-6)
                .map(|(_, (l, _, _))| *l)
                .collect();
            MaxThroughput {
                lp,
                per_path_mbps: x,
                total_mbps: objective,
                tight_links,
                link_constraints,
            }
        }
        LpOutcome::Infeasible => unreachable!("capacity LP is always feasible at 0"),
        LpOutcome::Unbounded => {
            unreachable!("every path crosses at least one finite-capacity link")
        }
    }
}

impl MaxThroughput {
    /// Shadow prices (dual values) of the link-capacity constraints,
    /// computed by finite differences: how much the optimal total grows per
    /// extra Mbps of capacity on each constrained link. On the paper's
    /// network every pairwise bottleneck prices at 0.5 — relaxing any one
    /// of the three coupled constraints buys half its slack in total
    /// throughput, which is exactly the "decrease x2 by x to gain 2x
    /// elsewhere" observation of Section 3.
    pub fn shadow_prices(&self) -> Vec<(LinkId, f64)> {
        const EPS: f64 = 1e-3;
        let mut out = Vec::with_capacity(self.link_constraints.len());
        for (ci, (link, _, _)) in self.link_constraints.iter().enumerate() {
            let mut lp = self.lp.clone();
            lp.relax_constraint(ci, EPS);
            let price = match solve::<f64>(&lp) {
                LpOutcome::Optimal { objective, .. } => (objective - self.total_mbps) / EPS,
                _ => 0.0,
            };
            // Clean up finite-difference noise.
            let price = if price.abs() < 1e-6 { 0.0 } else { price };
            out.push((*link, price));
        }
        out
    }

    /// The greedy baseline the paper contrasts with: fill paths one at a
    /// time (in the given order), each up to the residual capacity of its
    /// links. Returns per-path rates in Mbps. This is what "increase the
    /// rates independently" converges to — a Pareto point that is generally
    /// *not* the LP optimum.
    pub fn greedy_fill(topo: &Topology, paths: &[Path], order: &[usize]) -> Vec<f64> {
        assert_eq!(order.len(), paths.len());
        let mut residual: std::collections::BTreeMap<LinkId, f64> =
            std::collections::BTreeMap::new();
        for p in paths {
            for &l in p.links() {
                residual
                    .entry(l)
                    .or_insert_with(|| topo.link(l).capacity.as_mbps_f64());
            }
        }
        let mut rates = vec![0.0; paths.len()];
        for &i in order {
            let room = paths[i]
                .links()
                .iter()
                .map(|l| residual[l])
                .fold(f64::INFINITY, f64::min);
            let take = room.max(0.0);
            rates[i] = take;
            for l in paths[i].links() {
                if let Some(r) = residual.get_mut(l) {
                    *r -= take;
                }
            }
        }
        rates
    }

    /// Check that a measured allocation is feasible (within `tol_mbps`) —
    /// used as an invariant on simulator output: measured throughput can
    /// never beat the LP's constraints.
    pub fn is_feasible(&self, rates_mbps: &[f64], tol_mbps: f64) -> bool {
        self.lp.is_feasible(rates_mbps, tol_mbps.max(F64_EPS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::QueueConfig;
    use simbase::SimDuration;

    /// The paper's Figure-1 network (consistent-variant constraints:
    /// x1+x2 ≤ 40, x1+x3 ≤ 60, x2+x3 ≤ 80).
    fn paper_network() -> (Topology, Vec<Path>) {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let v1 = t.add_node("v1");
        let v2 = t.add_node("v2");
        let v3 = t.add_node("v3");
        let v4 = t.add_node("v4");
        let d = t.add_node("d");
        let bw = Bandwidth::from_mbps;
        let ms = SimDuration::from_millis;
        let q = QueueConfig::default;
        t.add_link(s, v1, bw(40), ms(1), q()); // shared by paths 1,2
        t.add_link(v1, v4, bw(100), ms(1), q());
        t.add_link(v4, v2, bw(60), ms(1), q()); // shared by paths 1,3
        t.add_link(v2, d, bw(100), ms(1), q());
        t.add_link(v1, v3, bw(100), ms(1), q());
        t.add_link(v3, d, bw(80), ms(1), q()); // shared by paths 2,3
        t.add_link(s, v4, bw(100), ms(1), q());
        t.add_link(v2, v3, bw(100), ms(1), q());
        let p1 = Path::from_nodes(&t, &[s, v1, v4, v2, d]).unwrap();
        let p2 = Path::from_nodes(&t, &[s, v1, v3, d]).unwrap();
        let p3 = Path::from_nodes(&t, &[s, v4, v2, v3, d]).unwrap();
        (t, vec![p1, p2, p3])
    }

    #[test]
    fn paper_lp_reproduces_figure_1c() {
        let (t, paths) = paper_network();
        let sol = solve_max_throughput(&t, &paths);
        assert!(
            (sol.total_mbps - 90.0).abs() < 1e-6,
            "total {}",
            sol.total_mbps
        );
        assert!(
            (sol.per_path_mbps[0] - 10.0).abs() < 1e-6,
            "{:?}",
            sol.per_path_mbps
        );
        assert!((sol.per_path_mbps[1] - 30.0).abs() < 1e-6);
        assert!((sol.per_path_mbps[2] - 50.0).abs() < 1e-6);
        // All three pairwise bottlenecks are tight.
        assert_eq!(sol.tight_links.len(), 3);
    }

    #[test]
    fn greedy_fill_is_suboptimal_on_the_paper_network() {
        let (t, paths) = paper_network();
        let sol = solve_max_throughput(&t, &paths);
        // Greedy starting with Path 2 (the default shortest path).
        let greedy = MaxThroughput::greedy_fill(&t, &paths, &[1, 0, 2]);
        let greedy_total: f64 = greedy.iter().sum();
        assert!(
            greedy_total < sol.total_mbps - 5.0,
            "greedy {greedy_total} vs opt {}",
            sol.total_mbps
        );
        // Specifically: x2 = 40 exhausts s-v1, x1 = 0, x3 = min(60, 40) = 40.
        assert!((greedy[1] - 40.0).abs() < 1e-9);
        assert!((greedy[0] - 0.0).abs() < 1e-9);
        assert!((greedy[2] - 40.0).abs() < 1e-9);
        // Greedy allocations are feasible — just not optimal.
        assert!(sol.is_feasible(&greedy, 1e-6));
    }

    #[test]
    fn greedy_order_matters() {
        let (t, paths) = paper_network();
        let g1: f64 = MaxThroughput::greedy_fill(&t, &paths, &[0, 1, 2])
            .iter()
            .sum();
        let g2: f64 = MaxThroughput::greedy_fill(&t, &paths, &[2, 1, 0])
            .iter()
            .sum();
        // Different orders give different Pareto corners; none beats 90.
        assert!(g1 <= 90.0 + 1e-9);
        assert!(g2 <= 90.0 + 1e-9);
    }

    #[test]
    fn disjoint_paths_sum_their_capacities() {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("d");
        let bw = Bandwidth::from_mbps;
        let ms = SimDuration::from_millis;
        t.add_link(s, a, bw(30), ms(1), QueueConfig::default());
        t.add_link(a, d, bw(30), ms(1), QueueConfig::default());
        t.add_link(s, b, bw(20), ms(1), QueueConfig::default());
        t.add_link(b, d, bw(20), ms(1), QueueConfig::default());
        let p1 = Path::from_nodes(&t, &[s, a, d]).unwrap();
        let p2 = Path::from_nodes(&t, &[s, b, d]).unwrap();
        let sol = solve_max_throughput(&t, &[p1, p2]);
        assert!((sol.total_mbps - 50.0).abs() < 1e-6);
        assert_eq!(sol.per_path_mbps, vec![30.0, 20.0]);
        // Greedy equals optimal when paths are disjoint.
        let greedy: f64 = MaxThroughput::greedy_fill(
            &t,
            &[
                Path::from_nodes(&t, &[s, a, d]).unwrap(),
                Path::from_nodes(&t, &[s, b, d]).unwrap(),
            ],
            &[0, 1],
        )
        .iter()
        .sum();
        assert!((greedy - 50.0).abs() < 1e-9);
    }

    #[test]
    fn single_path_is_bottleneck_capacity() {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let m = t.add_node("m");
        let d = t.add_node("d");
        t.add_link(
            s,
            m,
            Bandwidth::from_mbps(100),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        t.add_link(
            m,
            d,
            Bandwidth::from_mbps(35),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        let p = Path::from_nodes(&t, &[s, m, d]).unwrap();
        let sol = solve_max_throughput(&t, &[p]);
        assert!((sol.total_mbps - 35.0).abs() < 1e-6);
        assert_eq!(sol.tight_links, vec![netsim::LinkId(1)]);
    }

    #[test]
    fn shared_first_hop_couples_everything() {
        // Both paths share s-m (cap 10); downstream is wide.
        let mut t = Topology::new();
        let s = t.add_node("s");
        let m = t.add_node("m");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("d");
        let bw = Bandwidth::from_mbps;
        t.add_link(s, m, bw(10), SimDuration::ZERO, QueueConfig::default());
        t.add_link(m, a, bw(100), SimDuration::ZERO, QueueConfig::default());
        t.add_link(a, d, bw(100), SimDuration::ZERO, QueueConfig::default());
        t.add_link(m, b, bw(100), SimDuration::ZERO, QueueConfig::default());
        t.add_link(b, d, bw(100), SimDuration::ZERO, QueueConfig::default());
        let p1 = Path::from_nodes(&t, &[s, m, a, d]).unwrap();
        let p2 = Path::from_nodes(&t, &[s, m, b, d]).unwrap();
        let sol = solve_max_throughput(&t, &[p1, p2]);
        assert!(
            (sol.total_mbps - 10.0).abs() < 1e-6,
            "MPTCP gains nothing here"
        );
    }

    #[test]
    fn feasibility_bound_rejects_overcount() {
        let (t, paths) = paper_network();
        let sol = solve_max_throughput(&t, &paths);
        assert!(sol.is_feasible(&[10.0, 30.0, 50.0], 0.01));
        assert!(!sol.is_feasible(&[20.0, 30.0, 50.0], 0.01));
    }

    #[test]
    fn shadow_prices_of_the_paper_bottlenecks_are_half() {
        let (t, paths) = paper_network();
        let sol = solve_max_throughput(&t, &paths);
        let prices = sol.shadow_prices();
        // Every tight pairwise bottleneck is worth 0.5 Mbps of total per
        // Mbps of capacity; every slack 100 Mbps link is worth 0.
        for (link, price) in prices {
            if sol.tight_links.contains(&link) {
                assert!((price - 0.5).abs() < 1e-3, "{link:?}: {price}");
            } else {
                assert_eq!(price, 0.0, "{link:?} is slack");
            }
        }
    }

    #[test]
    fn shadow_price_of_a_single_bottleneck_is_one() {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let d = t.add_node("d");
        let l = t.add_link(
            s,
            d,
            Bandwidth::from_mbps(10),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        let p = Path::from_nodes(&t, &[s, d]).unwrap();
        let sol = solve_max_throughput(&t, &[p]);
        let prices = sol.shadow_prices();
        assert_eq!(prices.len(), 1);
        assert_eq!(prices[0].0, l);
        assert!((prices[0].1 - 1.0).abs() < 1e-3);
    }
}
