//! Linear program model builder.
//!
//! A thin, explicit representation: maximize `c·x` subject to linear
//! constraints with `≤ / = / ≥` senses and `x ≥ 0`. The throughput problems
//! in this workspace are tiny (a variable per path, a constraint per link),
//! so clarity beats sparsity.

use std::fmt;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `a·x ≤ b`
    Le,
    /// `a·x = b`
    Eq,
    /// `a·x ≥ b`
    Ge,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Eq => "=",
            Sense::Ge => ">=",
        })
    }
}

/// One linear constraint `coeffs · x (sense) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficient per variable (dense; length = variable count).
    pub coeffs: Vec<f64>,
    /// The sense.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional label (e.g. the link this capacity constraint models).
    pub label: String,
}

/// A linear program: maximize `objective · x`, `x ≥ 0`, subject to
/// [`Constraint`]s.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    var_names: Vec<String>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with the given objective coefficient; returns its index.
    pub fn add_var(&mut self, name: impl Into<String>, objective: f64) -> usize {
        assert!(objective.is_finite());
        self.var_names.push(name.into());
        self.objective.push(objective);
        // Extend existing constraints with a zero coefficient.
        for c in &mut self.constraints {
            c.coeffs.push(0.0);
        }
        self.var_names.len() - 1
    }

    /// Add a constraint given sparse `(var, coeff)` terms.
    pub fn add_constraint(
        &mut self,
        label: impl Into<String>,
        terms: &[(usize, f64)],
        sense: Sense,
        rhs: f64,
    ) -> usize {
        assert!(rhs.is_finite());
        let mut coeffs = vec![0.0; self.var_names.len()];
        for &(v, c) in terms {
            assert!(v < coeffs.len(), "unknown variable {v}");
            assert!(c.is_finite());
            coeffs[v] += c;
        }
        self.constraints.push(Constraint {
            coeffs,
            sense,
            rhs,
            label: label.into(),
        });
        self.constraints.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name.
    pub fn var_name(&self, i: usize) -> &str {
        &self.var_names[i]
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluate a candidate point's objective.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.objective.len());
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check feasibility of a candidate point within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
                Sense::Ge => lhs >= c.rhs - tol,
            }
        })
    }

    /// Increase constraint `i`'s right-hand side by `delta` (sensitivity
    /// analysis: what would one more unit of this resource be worth?).
    pub fn relax_constraint(&mut self, i: usize, delta: f64) {
        assert!(delta.is_finite());
        self.constraints[i].rhs += delta;
    }

    /// The slack `rhs - lhs` of constraint `i` at point `x` (negated for
    /// `≥` so that 0 always means tight and positive always means loose).
    pub fn slack(&self, i: usize, x: &[f64]) -> f64 {
        let c = &self.constraints[i];
        let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
        match c.sense {
            Sense::Le | Sense::Eq => c.rhs - lhs,
            Sense::Ge => lhs - c.rhs,
        }
    }
}

impl fmt::Display for LinearProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "maximize ")?;
        for (i, c) in self.objective.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{}·{}", c, self.var_names[i])?;
        }
        writeln!(f)?;
        for c in &self.constraints {
            write!(f, "  [{}] ", c.label)?;
            let mut first = true;
            for (i, &a) in c.coeffs.iter().enumerate() {
                // simlint: allow(float-eq, reason = "Display-only: hide exactly-zero coefficients")
                if a == 0.0 {
                    continue;
                }
                if !first {
                    write!(f, " + ")?;
                }
                first = false;
                // simlint: allow(float-eq, reason = "Display-only: elide the unit coefficient")
                if a == 1.0 {
                    write!(f, "{}", self.var_names[i])?;
                } else {
                    write!(f, "{}·{}", a, self.var_names[i])?;
                }
            }
            writeln!(f, " {} {}", c.sense, c.rhs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_lp() -> LinearProgram {
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var("x1", 1.0);
        let x2 = lp.add_var("x2", 1.0);
        let x3 = lp.add_var("x3", 1.0);
        lp.add_constraint("s-v1", &[(x1, 1.0), (x2, 1.0)], Sense::Le, 40.0);
        lp.add_constraint("v4-v2", &[(x1, 1.0), (x3, 1.0)], Sense::Le, 60.0);
        lp.add_constraint("v3-d", &[(x2, 1.0), (x3, 1.0)], Sense::Le, 80.0);
        lp
    }

    #[test]
    fn builder_tracks_shape() {
        let lp = paper_lp();
        assert_eq!(lp.num_vars(), 3);
        assert_eq!(lp.num_constraints(), 3);
        assert_eq!(lp.var_name(1), "x2");
        assert_eq!(lp.objective(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn feasibility_and_objective() {
        let lp = paper_lp();
        // The paper's optimum.
        let x = [10.0, 30.0, 50.0];
        assert!(lp.is_feasible(&x, 1e-9));
        assert_eq!(lp.objective_value(&x), 90.0);
        // Infeasible points.
        assert!(!lp.is_feasible(&[40.0, 40.0, 0.0], 1e-9));
        assert!(!lp.is_feasible(&[-1.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn slack_is_zero_on_tight_constraints() {
        let lp = paper_lp();
        let x = [10.0, 30.0, 50.0];
        for i in 0..3 {
            assert!(
                lp.slack(i, &x).abs() < 1e-9,
                "constraint {i} should be tight"
            );
        }
        let x = [0.0, 0.0, 0.0];
        assert_eq!(lp.slack(0, &x), 40.0);
    }

    #[test]
    fn late_variables_extend_constraints() {
        let mut lp = LinearProgram::new();
        let a = lp.add_var("a", 1.0);
        lp.add_constraint("c0", &[(a, 1.0)], Sense::Le, 5.0);
        let b = lp.add_var("b", 2.0);
        lp.add_constraint("c1", &[(a, 1.0), (b, 1.0)], Sense::Le, 7.0);
        assert_eq!(lp.constraints()[0].coeffs.len(), 2);
        assert_eq!(lp.constraints()[0].coeffs[1], 0.0);
    }

    #[test]
    fn ge_and_eq_senses() {
        let mut lp = LinearProgram::new();
        let a = lp.add_var("a", 1.0);
        lp.add_constraint("min", &[(a, 1.0)], Sense::Ge, 2.0);
        lp.add_constraint("pin", &[(a, 1.0)], Sense::Eq, 3.0);
        assert!(lp.is_feasible(&[3.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0], 1e-9));
        assert!(lp.slack(0, &[3.0]) > 0.0);
    }

    #[test]
    fn display_renders_readably() {
        let lp = paper_lp();
        let s = format!("{lp}");
        assert!(s.contains("maximize"), "{s}");
        assert!(s.contains("x1 + x2 <= 40"), "{s}");
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut lp = LinearProgram::new();
        let a = lp.add_var("a", 1.0);
        lp.add_constraint("c", &[(a, 1.0), (a, 2.0)], Sense::Le, 6.0);
        assert_eq!(lp.constraints()[0].coeffs[0], 3.0);
    }
}
