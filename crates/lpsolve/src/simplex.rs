//! Two-phase dense simplex with Bland's anti-cycling rule.
//!
//! Generic over [`LpNum`], so the identical pivot code runs in `f64` and in
//! exact rational arithmetic. The problems here are tiny (tens of variables
//! and constraints), so a dense tableau with Bland's rule — slow but
//! provably terminating — is the right engineering trade.
//!
//! Normal form handled internally: `x ≥ 0`; each `≤` row gets a slack, each
//! `≥` row a surplus plus an artificial, each `=` row an artificial; phase 1
//! minimizes the artificial sum to find a basic feasible solution, phase 2
//! optimizes the real objective.

use crate::model::{LinearProgram, Sense};
use crate::num::LpNum;

/// The outcome of solving an LP.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome<T> {
    /// An optimal solution exists.
    Optimal {
        /// Objective value.
        objective: T,
        /// Primal solution (original variables only).
        x: Vec<T>,
    },
    /// No feasible point.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

/// A dense simplex tableau.
struct Tableau<T> {
    /// rows[m][n+1]: constraint rows, last column is the RHS.
    rows: Vec<Vec<T>>,
    /// Objective row (reduced costs), length n+1; maximization.
    obj: Vec<T>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    n: usize,
}

impl<T: LpNum> Tableau<T> {
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col].clone();
        debug_assert!(!pivot_val.near_zero(), "pivot on (near-)zero element");
        // Normalize pivot row.
        for v in self.rows[row].iter_mut() {
            *v = v.div(&pivot_val);
        }
        // Eliminate the column from all other rows and the objective.
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col].clone();
            if factor.near_zero() {
                continue;
            }
            for c in 0..=self.n {
                let delta = factor.mul(&self.rows[row][c]);
                self.rows[r][c] = self.rows[r][c].sub(&delta);
            }
        }
        let factor = self.obj[col].clone();
        if !factor.near_zero() {
            for c in 0..=self.n {
                let delta = factor.mul(&self.rows[row][c]);
                self.obj[c] = self.obj[c].sub(&delta);
            }
        }
        self.basis[row] = col;
    }

    /// Run the simplex loop on the current objective row, allowing only
    /// columns `< col_limit` to enter (phase 2 excludes artificials).
    /// Bland's rule: entering = lowest-index column with positive reduced
    /// cost; leaving = lowest ratio, ties by lowest basic-variable index.
    /// Returns false if unbounded.
    fn optimize(&mut self, col_limit: usize) -> bool {
        loop {
            // Entering column (maximization: positive coefficient in obj).
            let Some(col) = (0..col_limit).find(|&c| self.obj[c].gt_zero()) else {
                return true; // optimal
            };
            // Ratio test.
            let mut best: Option<(usize, T)> = None;
            for r in 0..self.rows.len() {
                let a = &self.rows[r][col];
                if !a.gt_zero() {
                    continue;
                }
                let ratio = self.rows[r][self.n].div(a);
                let better = match &best {
                    None => true,
                    Some((br, bratio)) => {
                        ratio < *bratio || (ratio == *bratio && self.basis[r] < self.basis[*br])
                    }
                };
                if better {
                    best = Some((r, ratio));
                }
            }
            let Some((row, _)) = best else {
                return false; // unbounded
            };
            self.pivot(row, col);
        }
    }
}

/// Solve `lp` (maximization) in the arithmetic of `T`.
pub fn solve<T: LpNum>(lp: &LinearProgram) -> LpOutcome<T> {
    let m = lp.num_constraints();
    let nv = lp.num_vars();

    // Column layout: [original 0..nv | slack/surplus | artificials].
    let mut n = nv;
    let mut slack_col = vec![None; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        match c.sense {
            Sense::Le | Sense::Ge => {
                slack_col[i] = Some(n);
                n += 1;
            }
            Sense::Eq => {}
        }
    }
    let art_start = n;
    // Every row gets an artificial if it needs one: Ge and Eq always; Le
    // only if rhs < 0 (after which we flip the row; our builder keeps rhs
    // finite but possibly negative).
    let mut art_col = vec![None; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        let needs_art = match c.sense {
            Sense::Le => c.rhs < 0.0,
            // Ge rows always need one: after sign normalization the surplus
            // column has the wrong sign to serve as a starting basis.
            Sense::Ge | Sense::Eq => true,
        };
        if needs_art {
            art_col[i] = Some(n);
            n += 1;
        }
    }

    let mut rows: Vec<Vec<T>> = Vec::with_capacity(m);
    let mut basis = vec![0usize; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        let mut row: Vec<T> = vec![T::zero(); n + 1];
        // Row sign normalization so RHS >= 0.
        let flip = c.rhs < 0.0;
        let sgn = if flip { -1.0 } else { 1.0 };
        for (j, &a) in c.coeffs.iter().enumerate() {
            row[j] = T::from_f64(sgn * a);
        }
        row[n] = T::from_f64(sgn * c.rhs);
        // Slack/surplus sign: Le gets +1 (or -1 if flipped), Ge gets -1
        // (or +1 if flipped).
        if let Some(sc) = slack_col[i] {
            let coeff = match (c.sense, flip) {
                (Sense::Le, false) | (Sense::Ge, true) => T::one(),
                (Sense::Le, true) | (Sense::Ge, false) => T::one().neg(),
                (Sense::Eq, _) => unreachable!(),
            };
            row[sc] = coeff;
        }
        rows.push(row);
        basis[i] = usize::MAX; // assigned below
    }

    // Decide the initial basis: a slack with +1 coefficient can be basic
    // directly; otherwise use the artificial.
    let mut art_needed = vec![false; m];
    for i in 0..m {
        if let Some(sc) = slack_col[i] {
            if rows[i][sc] == T::one() {
                basis[i] = sc;
                continue;
            }
        }
        art_needed[i] = true;
    }
    // (Re)assign artificial columns compactly for the rows that need them.
    let mut next_art = art_start;
    // First wipe optimistic assignments from the sizing pass and recount.
    for i in 0..m {
        art_col[i] = None;
        if art_needed[i] {
            art_col[i] = Some(next_art);
            next_art += 1;
        }
    }
    let n = next_art; // final column count
    for (i, row) in rows.iter_mut().enumerate() {
        // Resize row to n+1, moving the RHS into the last slot.
        let rhs = row.pop().unwrap_or_else(T::zero); // every row carries an RHS
        row.resize(n, T::zero());
        row.push(rhs);
        if let Some(ac) = art_col[i] {
            row[ac] = T::one();
            basis[i] = ac;
        }
    }

    let mut tab = Tableau {
        rows,
        obj: vec![T::zero(); n + 1],
        basis,
        n,
    };

    // Phase 1: maximize -(sum of artificials).
    if (art_start..n).next().is_some() {
        for c in art_start..n {
            tab.obj[c] = T::one().neg();
        }
        // Price out basic artificials (their rows currently contain them
        // with coefficient 1).
        for r in 0..m {
            if tab.basis[r] >= art_start {
                for c in 0..=n {
                    let delta = tab.rows[r][c].clone();
                    tab.obj[c] = tab.obj[c].add(&delta);
                }
            }
        }
        if !tab.optimize(n) {
            // Phase-1 objective is bounded by construction; treat as bug.
            unreachable!("phase 1 cannot be unbounded");
        }
        // Feasible iff the artificial sum is zero: obj value = -sum.
        if !tab.obj[n].near_zero() {
            return LpOutcome::Infeasible;
        }
        // Drive any artificials remaining in the basis out (degenerate).
        for r in 0..m {
            if tab.basis[r] >= art_start {
                if let Some(col) = (0..art_start).find(|&c| !tab.rows[r][c].near_zero()) {
                    tab.pivot(r, col);
                }
                // If the whole row is zero the constraint was redundant;
                // leaving the artificial basic at value 0 is harmless.
            }
        }
    }

    // Phase 2: the real objective, with artificial columns frozen at zero.
    for c in 0..=n {
        tab.obj[c] = T::zero();
    }
    for (j, &cj) in lp.objective().iter().enumerate() {
        tab.obj[j] = T::from_f64(cj);
    }
    // Price out the basic variables.
    for r in 0..m {
        let b = tab.basis[r];
        let factor = tab.obj[b].clone();
        if factor.near_zero() {
            continue;
        }
        for c in 0..=n {
            let delta = factor.mul(&tab.rows[r][c]);
            tab.obj[c] = tab.obj[c].sub(&delta);
        }
    }
    // Artificial columns are excluded from entering, so they stay at zero.
    if !tab.optimize(art_start) {
        return LpOutcome::Unbounded;
    }

    // Extract the solution.
    let mut x = vec![T::zero(); nv];
    for r in 0..m {
        let b = tab.basis[r];
        if b < nv {
            x[b] = tab.rows[r][n].clone();
        }
    }
    // Objective value: -obj[n] after pricing (obj row holds z - c·x form);
    // recompute directly from x for robustness.
    let mut objective = T::zero();
    for (j, &cj) in lp.objective().iter().enumerate() {
        objective = objective.add(&T::from_f64(cj).mul(&x[j]));
    }
    LpOutcome::Optimal { objective, x }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num::Rational;

    fn assert_optimal_f64(lp: &LinearProgram, want_obj: f64, want_x: Option<&[f64]>) {
        match solve::<f64>(lp) {
            LpOutcome::Optimal { objective, x } => {
                assert!(
                    (objective - want_obj).abs() < 1e-6,
                    "objective {objective} != {want_obj}"
                );
                assert!(lp.is_feasible(&x, 1e-6), "solution infeasible: {x:?}");
                if let Some(w) = want_x {
                    for (a, b) in x.iter().zip(w) {
                        assert!((a - b).abs() < 1e-6, "x {x:?} != {w:?}");
                    }
                }
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn paper_lp_gives_90() {
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var("x1", 1.0);
        let x2 = lp.add_var("x2", 1.0);
        let x3 = lp.add_var("x3", 1.0);
        lp.add_constraint("b12", &[(x1, 1.0), (x2, 1.0)], Sense::Le, 40.0);
        lp.add_constraint("b13", &[(x1, 1.0), (x3, 1.0)], Sense::Le, 60.0);
        lp.add_constraint("b23", &[(x2, 1.0), (x3, 1.0)], Sense::Le, 80.0);
        assert_optimal_f64(&lp, 90.0, Some(&[10.0, 30.0, 50.0]));
        // Exact arithmetic agrees.
        match solve::<Rational>(&lp) {
            LpOutcome::Optimal { objective, x } => {
                assert_eq!(objective, Rational::from_int(90));
                assert_eq!(
                    x,
                    vec![
                        Rational::from_int(10),
                        Rational::from_int(30),
                        Rational::from_int(50)
                    ]
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn paper_erratum_variant_also_90_but_permuted() {
        // The constraint set as literally printed in the paper.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_var("x1", 1.0);
        let x2 = lp.add_var("x2", 1.0);
        let x3 = lp.add_var("x3", 1.0);
        lp.add_constraint("b12", &[(x1, 1.0), (x2, 1.0)], Sense::Le, 40.0);
        lp.add_constraint("b23", &[(x2, 1.0), (x3, 1.0)], Sense::Le, 60.0);
        lp.add_constraint("b13", &[(x1, 1.0), (x3, 1.0)], Sense::Le, 80.0);
        assert_optimal_f64(&lp, 90.0, Some(&[30.0, 10.0, 50.0]));
    }

    #[test]
    fn single_variable_box() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 3.0);
        lp.add_constraint("cap", &[(x, 1.0)], Sense::Le, 7.0);
        assert_optimal_f64(&lp, 21.0, Some(&[7.0]));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 0.0);
        lp.add_constraint("only-y", &[(y, 1.0)], Sense::Le, 5.0);
        let _ = x;
        assert_eq!(solve::<f64>(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint("lo", &[(x, 1.0)], Sense::Ge, 10.0);
        lp.add_constraint("hi", &[(x, 1.0)], Sense::Le, 5.0);
        assert_eq!(solve::<f64>(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn equality_constraints_work() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint("pin", &[(x, 1.0)], Sense::Eq, 3.0);
        lp.add_constraint("cap", &[(x, 1.0), (y, 1.0)], Sense::Le, 10.0);
        assert_optimal_f64(&lp, 10.0, Some(&[3.0, 7.0]));
    }

    #[test]
    fn ge_constraints_force_lower_bounds() {
        // minimize-ish: maximize -x with x >= 4  ->  x = 4.
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", -1.0);
        lp.add_constraint("lo", &[(x, 1.0)], Sense::Ge, 4.0);
        lp.add_constraint("hi", &[(x, 1.0)], Sense::Le, 100.0);
        assert_optimal_f64(&lp, -4.0, Some(&[4.0]));
    }

    #[test]
    fn degenerate_redundant_constraints() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", 1.0);
        lp.add_constraint("a", &[(x, 1.0)], Sense::Le, 5.0);
        lp.add_constraint("b", &[(x, 1.0)], Sense::Le, 5.0);
        lp.add_constraint("c", &[(x, 2.0)], Sense::Le, 10.0);
        assert_optimal_f64(&lp, 5.0, Some(&[5.0]));
    }

    #[test]
    fn negative_rhs_row_is_normalized() {
        // -x <= -2  ==  x >= 2.
        let mut lp = LinearProgram::new();
        let x = lp.add_var("x", -1.0);
        lp.add_constraint("lo", &[(x, -1.0)], Sense::Le, -2.0);
        lp.add_constraint("hi", &[(x, 1.0)], Sense::Le, 9.0);
        assert_optimal_f64(&lp, -2.0, Some(&[2.0]));
    }

    #[test]
    fn klee_minty_3d_terminates() {
        // A classic worst case for naive pivoting; Bland's rule must
        // terminate and find 10^3-ish optimum.
        let mut lp = LinearProgram::new();
        let xs: Vec<usize> = (0..3)
            .map(|i| lp.add_var(format!("x{i}"), 10f64.powi(2 - i)))
            .collect();
        // Constraints: 2*sum_{j<i} 10^(i-j) x_j + x_i <= 100^i
        for i in 0..3 {
            let mut terms = Vec::new();
            for (j, &xj) in xs.iter().enumerate().take(i) {
                terms.push((xj, 2.0 * 10f64.powi((i - j) as i32)));
            }
            terms.push((xs[i], 1.0));
            lp.add_constraint(
                format!("c{i}"),
                &terms,
                Sense::Le,
                100f64.powi(i as i32 + 1),
            );
        }
        match solve::<f64>(&lp) {
            LpOutcome::Optimal { objective, .. } => {
                assert!((objective - 1_000_000.0).abs() < 1e-3, "{objective}");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn zero_constraint_problem() {
        // No constraints at all but zero objective: optimal trivially.
        let mut lp = LinearProgram::new();
        lp.add_var("x", 0.0);
        match solve::<f64>(&lp) {
            LpOutcome::Optimal { objective, x } => {
                assert_eq!(objective, 0.0);
                assert_eq!(x, vec![0.0]);
            }
            other => panic!("{other:?}"),
        }
    }
}
