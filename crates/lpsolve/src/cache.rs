//! Memoization of max-throughput LP solves.
//!
//! A parameter sweep runs hundreds of scenarios that differ only in seed,
//! congestion control, or link *delays* — none of which change the LP
//! ground truth, which depends solely on the capacity constraint set. The
//! [`LpCache`] keys solved [`MaxThroughput`] instances by a canonicalized
//! byte encoding of that constraint set, so a sweep pays for each distinct
//! LP exactly once no matter how many cells share it.
//!
//! The cache is thread-safe (`Mutex` around a `BTreeMap`) so a parallel
//! sweep runner can share one instance across workers. Memoization cannot
//! affect results: for a given key the cached value is the exact
//! [`MaxThroughput`] an uncached solve would have produced, because the
//! key pins every input of the solve (variables, objective, constraint
//! coefficients/senses/rhs, labels, and link bindings).

use crate::flow::{max_throughput_lp, solve_max_throughput, MaxThroughput};
use crate::model::{LinearProgram, Sense};
use netsim::{LinkId, Path, Topology};
use simbase::Bandwidth;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Hit/miss counters of an [`LpCache`], taken as a consistent snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LpCacheStats {
    /// Solves answered from the cache.
    pub hits: u64,
    /// Solves that ran the simplex and populated the cache.
    pub misses: u64,
}

impl LpCacheStats {
    /// Total solve requests observed.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A thread-safe memo table for [`solve_max_throughput`].
#[derive(Debug, Default)]
pub struct LpCache {
    map: Mutex<BTreeMap<Vec<u8>, MaxThroughput>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl LpCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Solve the max-throughput problem for `paths` over `topo`, reusing a
    /// previous solve of the same canonical constraint set if one exists.
    ///
    /// Building the LP (cheap, linear in paths × links) always happens — it
    /// is what produces the canonical key; only the simplex solve and the
    /// tight-constraint analysis are memoized.
    pub fn solve(&self, topo: &Topology, paths: &[Path]) -> MaxThroughput {
        let (lp, link_constraints) = max_throughput_lp(topo, paths);
        let key = canonical_key(&lp, &link_constraints);
        // A poisoned lock only means another worker panicked mid-insert;
        // the map itself is never left partially updated by `insert`, so
        // recover the guard instead of propagating the poison.
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Solve while holding the lock: sweeps issue bursts of identical
        // keys, and resolving the same tiny LP on two workers wastes more
        // than the serialization costs.
        let solved = solve_max_throughput(topo, paths);
        self.misses.fetch_add(1, Ordering::Relaxed);
        map.insert(key, solved.clone());
        solved
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LpCacheStats {
        LpCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct constraint sets cached.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Canonical byte encoding of a max-throughput LP plus its link bindings.
///
/// Two problems share a key iff an uncached solve would return the same
/// [`MaxThroughput`] for both: same variable count and objective, and the
/// same multiset of constraints (coefficients, sense, rhs, label, link id,
/// capacity). Constraints are sorted by their encoding so the key does not
/// depend on topology construction order; floats are encoded via
/// `f64::to_bits` so no tolerance or float comparison is involved.
pub fn canonical_key(
    lp: &LinearProgram,
    link_constraints: &[(LinkId, Vec<usize>, Bandwidth)],
) -> Vec<u8> {
    let mut rows: Vec<Vec<u8>> = Vec::with_capacity(lp.num_constraints());
    for (ci, c) in lp.constraints().iter().enumerate() {
        let mut row = Vec::new();
        for (vi, &coeff) in c.coeffs.iter().enumerate() {
            // Zero coefficients are structural padding, not constraint
            // content; an exact-bits test keeps this canonicalization
            // deterministic (and is simlint-sanctioned below).
            // simlint: allow(float-eq, reason = "exact structural-zero test on untouched padding values")
            if coeff == 0.0 {
                continue;
            }
            row.extend_from_slice(&(vi as u64).to_be_bytes());
            row.extend_from_slice(&coeff.to_bits().to_be_bytes());
        }
        row.push(match c.sense {
            Sense::Le => 0,
            Sense::Eq => 1,
            Sense::Ge => 2,
        });
        row.extend_from_slice(&c.rhs.to_bits().to_be_bytes());
        row.extend_from_slice(c.label.as_bytes());
        row.push(0);
        if let Some((link, _, cap)) = link_constraints.get(ci) {
            row.extend_from_slice(&(link.0 as u64).to_be_bytes());
            row.extend_from_slice(&cap.as_mbps_f64().to_bits().to_be_bytes());
        }
        rows.push(row);
    }
    rows.sort();
    let mut key = Vec::new();
    key.extend_from_slice(&(lp.num_vars() as u64).to_be_bytes());
    for &obj in lp.objective() {
        key.extend_from_slice(&obj.to_bits().to_be_bytes());
    }
    for row in rows {
        key.extend_from_slice(&(row.len() as u64).to_be_bytes());
        key.extend_from_slice(&row);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::QueueConfig;
    use simbase::SimDuration;

    fn two_path_net(cap_a: u64, cap_b: u64) -> (Topology, Vec<Path>) {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("d");
        let bw = Bandwidth::from_mbps;
        let ms = SimDuration::from_millis;
        t.add_link(s, a, bw(cap_a), ms(1), QueueConfig::default());
        t.add_link(a, d, bw(100), ms(1), QueueConfig::default());
        t.add_link(s, b, bw(cap_b), ms(1), QueueConfig::default());
        t.add_link(b, d, bw(100), ms(1), QueueConfig::default());
        let p1 = Path::from_nodes(&t, &[s, a, d]).unwrap();
        let p2 = Path::from_nodes(&t, &[s, b, d]).unwrap();
        (t, vec![p1, p2])
    }

    #[test]
    fn repeat_solves_hit_the_cache() {
        let cache = LpCache::new();
        let (t, paths) = two_path_net(30, 20);
        let first = cache.solve(&t, &paths);
        let second = cache.solve(&t, &paths);
        assert_eq!(first.total_mbps, second.total_mbps);
        assert_eq!(first.per_path_mbps, second.per_path_mbps);
        assert_eq!(cache.stats(), LpCacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_solution_matches_uncached() {
        let cache = LpCache::new();
        let (t, paths) = two_path_net(30, 20);
        let direct = solve_max_throughput(&t, &paths);
        let _warm = cache.solve(&t, &paths);
        let cached = cache.solve(&t, &paths);
        assert_eq!(cached.total_mbps, direct.total_mbps);
        assert_eq!(cached.per_path_mbps, direct.per_path_mbps);
        assert_eq!(cached.tight_links, direct.tight_links);
    }

    #[test]
    fn distinct_capacities_get_distinct_entries() {
        let cache = LpCache::new();
        let (t1, p1) = two_path_net(30, 20);
        let (t2, p2) = two_path_net(40, 20);
        let a = cache.solve(&t1, &p1);
        let b = cache.solve(&t2, &p2);
        assert!((a.total_mbps - 50.0).abs() < 1e-6);
        assert!((b.total_mbps - 60.0).abs() < 1e-6);
        assert_eq!(cache.stats(), LpCacheStats { hits: 0, misses: 2 });
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn key_ignores_delays_but_not_capacities() {
        // Same capacities, different delays: one key. Changed capacity:
        // another key.
        let mut t = Topology::new();
        let s = t.add_node("s");
        let d = t.add_node("d");
        t.add_link(
            s,
            d,
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(5),
            QueueConfig::default(),
        );
        let p = vec![Path::from_nodes(&t, &[s, d]).unwrap()];
        let (lp1, lc1) = max_throughput_lp(&t, &p);

        let mut t2 = Topology::new();
        let s2 = t2.add_node("s");
        let d2 = t2.add_node("d");
        t2.add_link(
            s2,
            d2,
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(50),
            QueueConfig::default(),
        );
        let p2 = vec![Path::from_nodes(&t2, &[s2, d2]).unwrap()];
        let (lp2, lc2) = max_throughput_lp(&t2, &p2);
        assert_eq!(canonical_key(&lp1, &lc1), canonical_key(&lp2, &lc2));

        let mut t3 = Topology::new();
        let s3 = t3.add_node("s");
        let d3 = t3.add_node("d");
        t3.add_link(
            s3,
            d3,
            Bandwidth::from_mbps(11),
            SimDuration::from_millis(5),
            QueueConfig::default(),
        );
        let p3 = vec![Path::from_nodes(&t3, &[s3, d3]).unwrap()];
        let (lp3, lc3) = max_throughput_lp(&t3, &p3);
        assert_ne!(canonical_key(&lp1, &lc1), canonical_key(&lp3, &lc3));
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let cache = LpCache::new();
        let (t, paths) = two_path_net(30, 20);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let sol = cache.solve(&t, &paths);
                    assert!((sol.total_mbps - 50.0).abs() < 1e-6);
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.misses, 1, "one simplex solve serves all workers");
    }
}
