//! # lpsolve — linear programming for throughput ground truth
//!
//! The paper frames MPTCP's task on overlapping paths as a linear program:
//! maximize `x1 + x2 + x3` under per-link capacity constraints. This crate
//! provides:
//!
//! * [`model`] — an explicit LP builder (`maximize c·x`, `x ≥ 0`).
//! * [`simplex`] — a two-phase dense simplex with Bland's rule, generic
//!   over the arithmetic ([`num::LpNum`]): fast `f64` for experiments and
//!   exact [`num::Rational`] for cross-validation in tests.
//! * [`flow`] — automatic extraction of the max-throughput LP from a
//!   `netsim` topology + path set, plus the greedy-fill baseline the paper
//!   contrasts against, and tight-constraint (bottleneck) reporting.
//! * [`cache`] — a thread-safe memo table keyed by the canonicalized
//!   constraint set, so parameter sweeps solve each distinct LP once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod flow;
pub mod model;
pub mod num;
pub mod simplex;

pub use cache::{LpCache, LpCacheStats};
pub use flow::{max_throughput_lp, solve_max_throughput, MaxThroughput};
pub use model::{Constraint, LinearProgram, Sense};
pub use num::{LpNum, Rational, F64_EPS};
pub use simplex::{solve, LpOutcome};

#[cfg(test)]
mod proptests {
    //! Property tests: the f64 solver agrees with the exact rational solver
    //! on random feasible capacity-style LPs.
    use super::*;
    use proptest::prelude::*;

    /// Random small capacity LP: n vars, m ≤-constraints with 0/1
    /// coefficients and positive integer capacities. Always feasible (x=0)
    /// and bounded because every variable gets a box constraint.
    fn capacity_lp(n: usize, rows: Vec<(Vec<bool>, u32)>) -> LinearProgram {
        let mut lp = LinearProgram::new();
        for i in 0..n {
            lp.add_var(format!("x{i}"), 1.0);
        }
        for i in 0..n {
            lp.add_constraint(format!("box{i}"), &[(i, 1.0)], Sense::Le, 100.0);
        }
        for (ri, (mask, cap)) in rows.into_iter().enumerate() {
            let terms: Vec<(usize, f64)> = mask
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| (i, 1.0))
                .collect();
            if !terms.is_empty() {
                lp.add_constraint(format!("c{ri}"), &terms, Sense::Le, cap as f64 % 97.0 + 1.0);
            }
        }
        lp
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn f64_simplex_matches_exact_rational(
            n in 1usize..5,
            rows in proptest::collection::vec(
                (proptest::collection::vec(any::<bool>(), 5), any::<u32>()),
                0..6
            ),
        ) {
            let rows: Vec<(Vec<bool>, u32)> =
                rows.into_iter().map(|(m, c)| (m[..n].to_vec(), c)).collect();
            let lp = capacity_lp(n, rows);
            let f = solve::<f64>(&lp);
            let r = solve::<Rational>(&lp);
            match (f, r) {
                (LpOutcome::Optimal { objective: fo, x: fx },
                 LpOutcome::Optimal { objective: ro, x: rx }) => {
                    prop_assert!((fo - ro.to_f64()).abs() < 1e-6,
                        "objectives diverge: {fo} vs {ro:?}");
                    // Both solutions must be feasible; vertices may differ
                    // when the optimum face is degenerate, so compare only
                    // objective values and feasibility.
                    prop_assert!(lp.is_feasible(&fx, 1e-6));
                    let rxf: Vec<f64> = rx.iter().map(|v| v.to_f64()).collect();
                    prop_assert!(lp.is_feasible(&rxf, 1e-6));
                }
                (a, b) => prop_assert!(false, "outcome mismatch: {a:?} vs {b:?}"),
            }
        }

        #[test]
        fn optimum_dominates_random_feasible_points(
            n in 1usize..5,
            rows in proptest::collection::vec(
                (proptest::collection::vec(any::<bool>(), 5), any::<u32>()),
                1..6
            ),
            point in proptest::collection::vec(0.0f64..100.0, 5),
        ) {
            let rows: Vec<(Vec<bool>, u32)> =
                rows.into_iter().map(|(m, c)| (m[..n].to_vec(), c)).collect();
            let lp = capacity_lp(n, rows);
            if let LpOutcome::Optimal { objective, .. } = solve::<f64>(&lp) {
                // Scale the random point down until feasible, then check it
                // cannot beat the optimum.
                let mut x: Vec<f64> = point[..n].to_vec();
                for _ in 0..40 {
                    if lp.is_feasible(&x, 1e-9) {
                        break;
                    }
                    for v in &mut x {
                        *v *= 0.7;
                    }
                }
                if lp.is_feasible(&x, 1e-9) {
                    prop_assert!(lp.objective_value(&x) <= objective + 1e-6);
                }
            } else {
                prop_assert!(false, "capacity LP must be optimal");
            }
        }
    }
}
