//! Topology partitioning for the conservative parallel engine.
//!
//! [`partition_topology`] splits a [`Topology`] into regions by greedy
//! min-cut contraction: repeatedly merge the two components joined by the
//! cheapest remaining link — cheapest meaning smallest *effective* delay,
//! because a cut link's delay is exactly the synchronization lookahead the
//! parallel engine gets from it. Ties break by merged component size (to
//! keep regions balanced) and then by link id, so the partition is a pure
//! function of (topology, delay floors, region count).
//!
//! Links whose effective delay can reach zero carry no lookahead at all and
//! are co-located unconditionally before the greedy phase — a zero-delay
//! cut link would force a zero-width synchronization window (see
//! DESIGN.md §11).

use crate::packet::{LinkId, NodeId};
use crate::topology::Topology;
use simbase::SimDuration;

/// A region assignment for every node, plus the cut structure that the
/// conservative synchronization protocol needs.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Number of regions actually produced (≤ the requested count; a
    /// topology with few components to offer may not split that far).
    pub regions: u32,
    /// Region of each node, indexed by `NodeId`.
    pub node_region: Vec<u32>,
    /// Links whose endpoints landed in different regions.
    pub cut_links: Vec<LinkId>,
    /// The conservative lookahead: the minimum effective delay over
    /// `cut_links`. `None` when nothing is cut (single region, or the
    /// regions are disconnected components) — synchronization is then
    /// unnecessary and any window width is safe.
    pub lookahead: Option<SimDuration>,
}

/// Deterministic disjoint-set forest (path halving + size union with
/// smallest-root tie-break, so the outcome is independent of query order).
struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n as u32).collect(), // simlint: allow(truncating-cast, reason = "n is a node count and NodeId is u32, so n fits")
            size: vec![1; n],
        }
    }

    // Every index below is a node id (or a root, which is also a node id)
    // strictly below the `n` both vectors were built with.
    fn find(&mut self, mut x: u32) -> u32 {
        // simlint: allow(panic-surface, reason = "x is a node id below the n the forest was built with")
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize]; // simlint: allow(panic-surface, reason = "parent entries are themselves node ids below n")
            self.parent[x as usize] = gp; // simlint: allow(panic-surface, reason = "x is a node id below the n the forest was built with")
            x = gp;
        }
        x
    }

    fn size_of(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize] // simlint: allow(panic-surface, reason = "find returns a node id below the n the forest was built with")
    }

    /// Union by size; equal sizes keep the smaller root (determinism).
    fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        // simlint: allow(panic-surface, reason = "find returns a node id below the n the forest was built with")
        let (big, small) = match self.size[ra as usize].cmp(&self.size[rb as usize]) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => (ra.min(rb), ra.max(rb)),
        };
        self.parent[small as usize] = big; // simlint: allow(panic-surface, reason = "find returns a node id below the n the forest was built with")
        self.size[big as usize] += self.size[small as usize]; // simlint: allow(panic-surface, reason = "find returns a node id below the n the forest was built with")
        true
    }
}

/// Partition `topo` into up to `want` regions, given the *effective
/// minimum* delay each link can take over the run (`delay_floor[l]` — the
/// static delay lowered by any `SetDelay` fault targeting `l`).
///
/// Zero-floor links are contracted first; the greedy phase then merges the
/// cheapest remaining links until `want` components are left. Region ids
/// are assigned by each region's smallest node id, so the numbering is
/// stable under re-partitioning.
pub fn partition_topology(topo: &Topology, want: usize, delay_floor: &[SimDuration]) -> Partition {
    // simlint: allow(panic-surface, reason = "argument validation at partition time, before the run starts")
    assert_eq!(
        delay_floor.len(),
        topo.link_count(),
        "one delay floor per link"
    );
    let n = topo.node_count();
    let want = want.max(1);
    let mut dsu = Dsu::new(n);
    let mut components = n as u32; // simlint: allow(truncating-cast, reason = "node count fits u32: NodeId is u32")

    // Phase 1: co-locate zero-lookahead links unconditionally.
    for l in topo.link_ids() {
        // simlint: allow(panic-surface, reason = "one floor per link, checked by the assert above")
        if delay_floor[l.0 as usize].is_zero() {
            let spec = topo.link(l);
            if dsu.union(spec.a.0, spec.b.0) {
                components -= 1;
            }
        }
    }

    // Phase 2: greedy contraction. Each round merges the live link with the
    // smallest (floor delay, merged size, link id) key. O(rounds × links) —
    // partitioning runs once per simulation, on topologies of at most a few
    // thousand links.
    while components as usize > want {
        let mut best: Option<(SimDuration, u32, LinkId)> = None;
        for l in topo.link_ids() {
            let spec = topo.link(l);
            if dsu.find(spec.a.0) == dsu.find(spec.b.0) {
                continue;
            }
            let merged = dsu.size_of(spec.a.0) + dsu.size_of(spec.b.0);
            let key = (delay_floor[l.0 as usize], merged, l); // simlint: allow(panic-surface, reason = "one floor per link, checked on entry")
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, l)) = best else {
            break; // disconnected: fewer mergeable components than asked
        };
        let spec = topo.link(l);
        dsu.union(spec.a.0, spec.b.0);
        components -= 1;
    }

    // Region ids ordered by each component's smallest node id.
    let mut roots: Vec<u32> = topo.node_ids().map(|nd| dsu.find(nd.0)).collect();
    let mut region_of_root = vec![u32::MAX; n];
    let mut next = 0u32;
    for root in roots.iter_mut() {
        let r = *root as usize;
        // simlint: allow(panic-surface, reason = "a root is a node id below n")
        if region_of_root[r] == u32::MAX {
            region_of_root[r] = next; // simlint: allow(panic-surface, reason = "a root is a node id below n")
            next += 1;
        }
        *root = region_of_root[r]; // simlint: allow(panic-surface, reason = "a root is a node id below n")
    }
    let node_region = roots;

    let cut_links: Vec<LinkId> = topo
        .link_ids()
        .filter(|&l| {
            let spec = topo.link(l);
            node_region[spec.a.0 as usize] != node_region[spec.b.0 as usize] // simlint: allow(panic-surface, reason = "node_region has one entry per node and link endpoints are topology nodes")
        })
        .collect();
    let lookahead = cut_links
        .iter()
        .map(|&l| delay_floor[l.0 as usize]) // simlint: allow(panic-surface, reason = "one floor per link, checked on entry")
        .min();
    if let Some(la) = lookahead {
        // simlint: allow(panic-surface, reason = "documented invariant, checked at partition time before the run starts")
        assert!(
            !la.is_zero(),
            "zero-delay cut link survived co-location; partitioning bug"
        );
    }
    Partition {
        regions: next,
        node_region,
        cut_links,
        lookahead,
    }
}

/// Build a [`Partition`] from an explicit node→region map (tests and
/// experiments that want to force a particular cut — e.g. through a shared
/// bottleneck — rather than take the greedy min-cut).
///
/// Panics if the map's length does not match the topology, if region ids
/// are not dense (`0..regions`), or if it cuts a link whose delay floor is
/// zero — such a cut has no lookahead and cannot be synchronized.
pub fn partition_from_map(
    topo: &Topology,
    node_region: &[u32],
    delay_floor: &[SimDuration],
) -> Partition {
    assert_eq!(node_region.len(), topo.node_count(), "one region per node"); // simlint: allow(panic-surface, reason = "argument validation at partition time, before the run starts")
                                                                             // simlint: allow(panic-surface, reason = "argument validation at partition time, before the run starts")
    assert_eq!(
        delay_floor.len(),
        topo.link_count(),
        "one delay floor per link"
    );
    let regions = node_region.iter().copied().max().map_or(0, |m| m + 1);
    assert!(regions > 0, "empty region map"); // simlint: allow(panic-surface, reason = "argument validation at partition time, before the run starts")
    let mut seen = vec![false; regions as usize];
    for &r in node_region {
        seen[r as usize] = true; // simlint: allow(panic-surface, reason = "regions is the map's maximum plus one, so every id fits")
    }
    // simlint: allow(panic-surface, reason = "argument validation at partition time, before the run starts")
    assert!(
        seen.iter().all(|&s| s),
        "region ids must be dense 0..regions"
    );
    let cut_links: Vec<LinkId> = topo
        .link_ids()
        .filter(|&l| {
            let spec = topo.link(l);
            node_region[spec.a.0 as usize] != node_region[spec.b.0 as usize] // simlint: allow(panic-surface, reason = "length checked against the node count on entry")
        })
        .collect();
    for &l in &cut_links {
        // simlint: allow(panic-surface, reason = "argument validation at partition time, before the run starts")
        assert!(
            !delay_floor[l.0 as usize].is_zero(), // simlint: allow(panic-surface, reason = "one floor per link, checked on entry")
            "region map cuts zero-delay {l:?}: no lookahead on that edge"
        );
    }
    let lookahead = cut_links.iter().map(|&l| delay_floor[l.0 as usize]).min(); // simlint: allow(panic-surface, reason = "one floor per link, checked on entry")
    Partition {
        regions,
        node_region: node_region.to_vec(),
        cut_links,
        lookahead,
    }
}

/// The static delay floors of a topology (no faults): each link's
/// configured propagation delay.
pub fn static_delay_floors(topo: &Topology) -> Vec<SimDuration> {
    topo.link_ids().map(|l| topo.link(l).delay).collect()
}

impl Partition {
    /// The region of `node`.
    pub fn region_of(&self, node: NodeId) -> u32 {
        self.node_region[node.0 as usize] // simlint: allow(panic-surface, reason = "the partition was built over this topology, one entry per node")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueConfig;
    use simbase::Bandwidth;

    /// A 6-node chain with a slow middle link: a -1ms- b -1ms- c -5ms- d -1ms- e -1ms- f.
    fn chain() -> Topology {
        let mut t = Topology::new();
        let ids: Vec<NodeId> = (0..6).map(|i| t.add_node(format!("n{i}"))).collect();
        let delays = [1, 1, 5, 1, 1];
        for (i, &ms) in delays.iter().enumerate() {
            t.add_link(
                ids[i],
                ids[i + 1],
                Bandwidth::from_mbps(100),
                SimDuration::from_millis(ms),
                QueueConfig::default(),
            );
        }
        t
    }

    #[test]
    fn two_regions_cut_the_slowest_link() {
        let t = chain();
        let p = partition_topology(&t, 2, &static_delay_floors(&t));
        assert_eq!(p.regions, 2);
        assert_eq!(p.cut_links, vec![LinkId(2)]);
        assert_eq!(p.lookahead, Some(SimDuration::from_millis(5)));
        // Halves: {a,b,c} and {d,e,f}, numbered by smallest node id.
        assert_eq!(p.node_region, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn one_region_cuts_nothing() {
        let t = chain();
        let p = partition_topology(&t, 1, &static_delay_floors(&t));
        assert_eq!(p.regions, 1);
        assert!(p.cut_links.is_empty());
        assert_eq!(p.lookahead, None);
    }

    #[test]
    fn region_count_is_clamped_to_what_exists() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(
            a,
            b,
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        let p = partition_topology(&t, 4, &static_delay_floors(&t));
        assert_eq!(p.regions, 2, "two nodes can make at most two regions");
    }

    #[test]
    fn zero_floor_links_are_co_located() {
        let t = chain();
        // A fault schedule drops link 2's delay to zero mid-run: it can no
        // longer be cut, so the partitioner must cut elsewhere.
        let mut floors = static_delay_floors(&t);
        floors[2] = SimDuration::ZERO;
        let p = partition_topology(&t, 2, &floors);
        assert_eq!(p.regions, 2);
        assert!(
            !p.cut_links.contains(&LinkId(2)),
            "zero-floor link must not be cut; got {:?}",
            p.cut_links
        );
        assert!(p.lookahead.is_some_and(|l| !l.is_zero()));
    }

    #[test]
    fn partition_is_deterministic() {
        let t = chain();
        let floors = static_delay_floors(&t);
        let a = partition_topology(&t, 3, &floors);
        let b = partition_topology(&t, 3, &floors);
        assert_eq!(a.node_region, b.node_region);
        assert_eq!(a.cut_links, b.cut_links);
    }

    #[test]
    fn explicit_map_reports_its_cut() {
        let t = chain();
        let map = [0, 0, 1, 1, 1, 1];
        let p = partition_from_map(&t, &map, &static_delay_floors(&t));
        assert_eq!(p.regions, 2);
        assert_eq!(p.cut_links, vec![LinkId(1)]);
        assert_eq!(p.lookahead, Some(SimDuration::from_millis(1)));
    }

    #[test]
    #[should_panic(expected = "no lookahead")]
    fn explicit_map_rejects_zero_delay_cuts() {
        let t = chain();
        let mut floors = static_delay_floors(&t);
        floors[1] = SimDuration::ZERO;
        let _ = partition_from_map(&t, &[0, 0, 1, 1, 1, 1], &floors);
    }

    #[test]
    fn disconnected_components_partition_without_cuts() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        let d = t.add_node("d");
        for (x, y) in [(a, b), (c, d)] {
            t.add_link(
                x,
                y,
                Bandwidth::from_mbps(10),
                SimDuration::from_millis(1),
                QueueConfig::default(),
            );
        }
        let p = partition_topology(&t, 2, &static_delay_floors(&t));
        assert_eq!(p.regions, 2);
        assert!(p.cut_links.is_empty());
        assert_eq!(p.lookahead, None);
    }
}
