//! The host-endpoint interface.
//!
//! Protocol stacks (plain TCP, MPTCP) attach to topology nodes as
//! [`Agent`]s. The simulator calls them with packets and timer expirations;
//! they respond by queueing *effects* (send packet, arm timer) on the
//! [`Ctx`]. Effects are applied by the simulator after the callback returns,
//! which keeps the borrow structure simple and makes agent behaviour
//! testable in isolation (hand an agent a `Ctx` backed by plain vectors and
//! inspect what it asked for).

use crate::packet::{Ecn, NodeId, Packet, Protocol, Tag};
use crate::payload::Payload;
use simbase::{EventLog, SimDuration, SimTime, Xoshiro256StarStar};
use std::fmt;

/// Index of a registered agent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub u32);

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agent{}", self.0)
    }
}

/// An endpoint protocol stack attached to a node.
///
/// `Send` because a partitioned run moves each agent (whole) onto its
/// region's worker thread; agents are never shared between threads.
pub trait Agent: Send {
    /// Called once at the agent's configured start time.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// A packet addressed to this agent's node arrived.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, pkt: Packet);

    /// A timer armed via [`Ctx::set_timer_after`] fired. Timers are
    /// one-shot, keyed by `(agent, token)`: at most one deadline is pending
    /// per token. Re-arming a token *replaces* the pending deadline (the
    /// old event is cancelled in the queue, never fired), and
    /// [`Ctx::cancel_timer`] revokes it outright — so a stale deadline can
    /// never fire. Engines should still poll against their current
    /// deadline on any timer; that keeps them testable standalone.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);

    /// Diagnostic name used in logs.
    fn name(&self) -> String {
        "agent".to_string()
    }

    /// Downcast hook for post-run inspection (return `Some(self)`).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Deep-copy this agent for a simulator checkpoint.
    ///
    /// Every production agent implements this; the default panics so that
    /// `Simulator::checkpoint` fails loudly (rather than silently sharing
    /// state) if a custom test agent without an implementation is present.
    fn clone_boxed(&self) -> Box<dyn Agent> {
        panic!("agent {:?} does not support checkpointing", self.name())
    }
}

/// A send/timer effect requested by an agent.
#[derive(Debug)]
pub enum Effect {
    /// Inject a packet into the network at the agent's node.
    Send(Packet),
    /// Arm a one-shot timer. Replaces any pending timer with the same
    /// token for this agent (the replaced event is cancelled, not fired).
    SetTimer {
        /// Absolute expiry time.
        at: SimTime,
        /// Token returned to the agent on expiry.
        token: u64,
    },
    /// Cancel the pending timer with this token, if any.
    CancelTimer {
        /// The token the timer was armed with.
        token: u64,
    },
}

/// The capability handle passed to agent callbacks.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    agent: AgentId,
    /// Deterministic RNG stream. The simulator hands each agent its own
    /// stream (derived from the run seed and the agent id), so an agent's
    /// draws depend only on its own call sequence — never on how agent
    /// callbacks interleave across the network or across regions.
    pub rng: &'a mut Xoshiro256StarStar,
    /// The simulation-wide event log.
    pub log: &'a mut EventLog,
    effects: &'a mut Vec<Effect>,
    next_packet_id: &'a mut u64,
}

impl<'a> Ctx<'a> {
    /// Construct a context. Public so tests and alternative drivers can
    /// exercise agents without a full simulator.
    pub fn new(
        now: SimTime,
        node: NodeId,
        agent: AgentId,
        rng: &'a mut Xoshiro256StarStar,
        log: &'a mut EventLog,
        effects: &'a mut Vec<Effect>,
        next_packet_id: &'a mut u64,
    ) -> Self {
        Ctx {
            now,
            node,
            agent,
            rng,
            log,
            effects,
            next_packet_id,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this agent is attached to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This agent's id.
    pub fn agent_id(&self) -> AgentId {
        self.agent
    }

    /// Send a packet from this node. Returns the assigned packet id.
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        dst: NodeId,
        tag: Tag,
        protocol: Protocol,
        payload: Payload,
        data_len: u32,
        flow_hash: u64,
    ) -> u64 {
        self.send_ecn(
            dst,
            tag,
            protocol,
            payload,
            data_len,
            flow_hash,
            Ecn::NotEct,
        )
    }

    /// Send a packet with an explicit ECN codepoint (ECN-capable senders
    /// mark data packets ECT so queues can mark instead of drop).
    #[allow(clippy::too_many_arguments)]
    pub fn send_ecn(
        &mut self,
        dst: NodeId,
        tag: Tag,
        protocol: Protocol,
        payload: Payload,
        data_len: u32,
        flow_hash: u64,
        ecn: Ecn,
    ) -> u64 {
        let id = *self.next_packet_id;
        *self.next_packet_id += 1;
        self.effects.push(Effect::Send(Packet {
            id,
            src: self.node,
            dst,
            tag,
            protocol,
            payload,
            data_len,
            flow_hash,
            ecn,
        }));
        id
    }

    /// Arm a one-shot timer `delay` from now, carrying `token`.
    pub fn set_timer_after(&mut self, delay: SimDuration, token: u64) {
        self.effects.push(Effect::SetTimer {
            at: self.now + delay,
            token,
        });
    }

    /// Arm a one-shot timer at an absolute time (must not be in the past).
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        assert!(at >= self.now, "timer in the past: {at} < {}", self.now);
        self.effects.push(Effect::SetTimer { at, token });
    }

    /// Cancel this agent's pending timer with `token`, if one is armed.
    /// A no-op when nothing is pending for the token.
    pub fn cancel_timer(&mut self, token: u64) {
        self.effects.push(Effect::CancelTimer { token });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simbase::LogLevel;

    fn with_ctx<R>(f: impl FnOnce(&mut Ctx<'_>) -> R) -> (R, Vec<Effect>, u64) {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut log = EventLog::new(LogLevel::Trace);
        let mut effects = Vec::new();
        let mut next_id = 7;
        let r = {
            let mut ctx = Ctx::new(
                SimTime::from_millis(5),
                NodeId(2),
                AgentId(0),
                &mut rng,
                &mut log,
                &mut effects,
                &mut next_id,
            );
            f(&mut ctx)
        };
        (r, effects, next_id)
    }

    #[test]
    fn send_assigns_sequential_ids() {
        let ((id1, id2), effects, next) = with_ctx(|ctx| {
            let a = ctx.send(NodeId(9), Tag(1), Protocol::Raw, Payload::empty(), 100, 0);
            let b = ctx.send(NodeId(9), Tag(1), Protocol::Raw, Payload::empty(), 100, 0);
            (a, b)
        });
        assert_eq!(id1, 7);
        assert_eq!(id2, 8);
        assert_eq!(next, 9);
        assert_eq!(effects.len(), 2);
        match &effects[0] {
            Effect::Send(p) => {
                assert_eq!(p.src, NodeId(2));
                assert_eq!(p.dst, NodeId(9));
                assert_eq!(p.id, 7);
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn timers_resolve_to_absolute_times() {
        let (_, effects, _) = with_ctx(|ctx| {
            ctx.set_timer_after(SimDuration::from_millis(3), 42);
            ctx.set_timer_at(SimTime::from_millis(10), 43);
        });
        match &effects[0] {
            Effect::SetTimer { at, token } => {
                assert_eq!(*at, SimTime::from_millis(8));
                assert_eq!(*token, 42);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &effects[1] {
            Effect::SetTimer { at, token } => {
                assert_eq!(*at, SimTime::from_millis(10));
                assert_eq!(*token, 43);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "timer in the past")]
    fn past_timer_panics() {
        let _ = with_ctx(|ctx| ctx.set_timer_at(SimTime::from_millis(1), 0));
    }

    #[test]
    fn accessors() {
        let _ = with_ctx(|ctx| {
            assert_eq!(ctx.now(), SimTime::from_millis(5));
            assert_eq!(ctx.node(), NodeId(2));
            assert_eq!(ctx.agent_id(), AgentId(0));
        });
    }
}
