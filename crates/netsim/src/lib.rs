//! # netsim — a deterministic packet-level network simulator
//!
//! This crate models the substrate the paper runs on (Mininet in the
//! original): nodes connected by full-duplex links with finite capacity,
//! propagation delay, and drop-tail (or RED) output queues, plus the
//! *tag-based deterministic routing* the authors added to pin MPTCP
//! subflows to chosen paths.
//!
//! Layering:
//!
//! * [`topology`] — the static network description (shared with `lpsolve`).
//! * [`paths`] — path enumeration and overlap analysis.
//! * [`routing`] — per-node FIBs: tag routes, defaults, ECMP groups.
//! * [`queue`] — drop-tail and RED output queues.
//! * [`agent`] — the sans-IO endpoint interface protocol stacks implement.
//! * [`sim`] — the event loop tying it all together.
//! * [`faults`] — declarative timed network mutations (failover etc.).
//! * [`capture`] / [`stats`] — tshark-style records and counters.
//!
//! The simulator is single-threaded and deterministic: a topology, agent
//! set, and seed fully determine every event. See the workspace DESIGN.md
//! for how this substitutes for the paper's Mininet testbed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod capture;
pub mod faults;
pub mod packet;
pub mod partition;
pub mod paths;
pub mod payload;
pub mod queue;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod topology;
pub mod traffic;

pub use agent::{Agent, AgentId, Ctx, Effect};
pub use capture::{CaptureConfig, CaptureKind, CaptureRecord};
pub use faults::{FaultAction, FaultSchedule};
pub use packet::{Dir, Ecn, LinkId, NodeId, Packet, PacketMeta, Protocol, Tag, IP_HEADER_BYTES};
pub use partition::{partition_from_map, partition_topology, static_delay_floors, Partition};
pub use paths::{
    all_simple_paths, k_shortest_paths, shortest_path, Path, PathError, SharingAnalysis,
};
pub use payload::{Payload, PayloadWriter, INLINE_CAP};
pub use queue::{
    CoDel, CoDelConfig, Dequeued, DropReason, DropTail, EnqueueResult, Queue, QueueConfig, Red,
    RedConfig,
};
pub use routing::{ecmp_select, Fib, RoutingTables};
pub use sim::{SimSnapshot, Simulator, SNAPSHOT_VERSION};
pub use stats::{LinkDirStats, SimStats};
pub use topology::{LinkSpec, NodeInfo, Topology};
pub use traffic::{CbrSource, DatagramSink, OnOffSource};

#[cfg(test)]
mod sim_tests {
    use super::*;
    use simbase::{Bandwidth, SimDuration, SimTime};

    /// An agent that sends `count` raw packets of `data_len` bytes to `dst`
    /// at start, optionally paced by a timer.
    struct Blaster {
        dst: NodeId,
        tag: Tag,
        count: u32,
        data_len: u32,
        sent: u32,
        pace: Option<SimDuration>,
    }

    impl Agent for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            match self.pace {
                None => {
                    for _ in 0..self.count {
                        ctx.send(
                            self.dst,
                            self.tag,
                            Protocol::Raw,
                            Payload::empty(),
                            self.data_len,
                            1,
                        );
                    }
                    self.sent = self.count;
                }
                Some(gap) => {
                    ctx.send(
                        self.dst,
                        self.tag,
                        Protocol::Raw,
                        Payload::empty(),
                        self.data_len,
                        1,
                    );
                    self.sent = 1;
                    if self.sent < self.count {
                        ctx.set_timer_after(gap, 0);
                    }
                }
            }
        }

        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}

        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.send(
                self.dst,
                self.tag,
                Protocol::Raw,
                Payload::empty(),
                self.data_len,
                1,
            );
            self.sent += 1;
            if self.sent < self.count {
                ctx.set_timer_after(self.pace.unwrap(), 0);
            }
        }
    }

    /// Counts deliveries.
    struct Sink {
        received: u64,
        last_at: SimTime,
    }

    impl Agent for Sink {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.received += 1;
            self.last_at = ctx.now();
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    }

    fn two_node_net(
        capacity: Bandwidth,
        delay: SimDuration,
        queue: QueueConfig,
    ) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(a, b, capacity, delay, queue);
        (t, a, b)
    }

    #[test]
    fn single_packet_end_to_end_timing() {
        // 1000B data + 20B IP = 1020 wire bytes at 1 Mbps = 8.16 ms
        // serialization + 5 ms propagation = arrival at 13.16 ms.
        let (topo, a, b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(5),
            QueueConfig::default(),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: b,
                tag: Tag::NONE,
                count: 1,
                data_len: 1000,
                sent: 0,
                pace: None,
            }),
            SimTime::ZERO,
        );
        let sink = sim.add_agent(
            b,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();

        assert_eq!(sim.stats().packets_delivered, 1);
        let expected = SimTime::from_nanos(8_160_000 + 5_000_000);
        assert_eq!(sim.now(), expected);
        let _ = sink;
    }

    #[test]
    fn fifo_burst_is_serialized_back_to_back() {
        // 10 packets of 1020 wire bytes at 1 Mbps: nth arrival at
        // n*8.16ms + 5ms.
        let (topo, a, b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(5),
            QueueConfig::DropTailPackets(100),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: b,
                tag: Tag::NONE,
                count: 10,
                data_len: 1000,
                sent: 0,
                pace: None,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            b,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 10);
        assert_eq!(sim.now(), SimTime::from_nanos(10 * 8_160_000 + 5_000_000));
        assert_eq!(sim.link_stats(LinkId(0), Dir::AtoB).tx_packets, 10);
        assert_eq!(sim.link_stats(LinkId(0), Dir::AtoB).tx_bytes, 10_200);
    }

    #[test]
    fn queue_overflow_drops_and_accounts() {
        // Queue of 4 packets + 1 transmitting: a burst of 10 loses 5.
        let (topo, a, b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(4),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.set_capture(CaptureConfig::everything());
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: b,
                tag: Tag::NONE,
                count: 10,
                data_len: 1000,
                sent: 0,
                pace: None,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            b,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();

        assert_eq!(sim.stats().packets_delivered, 5);
        assert_eq!(sim.stats().packets_dropped, 5);
        assert!(sim.stats().conserved(0));
        assert_eq!(sim.link_stats(LinkId(0), Dir::AtoB).drops, 5);
        let drops = sim
            .captures()
            .iter()
            .filter(|c| c.kind == CaptureKind::Dropped)
            .count();
        assert_eq!(drops, 5);
    }

    #[test]
    fn paced_traffic_never_drops() {
        // One packet per 10 ms over a link that serializes in 8.16 ms.
        let (topo, a, b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(1),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: b,
                tag: Tag::NONE,
                count: 20,
                data_len: 1000,
                sent: 0,
                pace: Some(SimDuration::from_millis(10)),
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            b,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 20);
        assert_eq!(sim.stats().packets_dropped, 0);
    }

    #[test]
    fn multihop_forwarding_follows_tags() {
        // s->u->d (fast) vs s->v->d (slow); tagged flow pinned to the slow path.
        let mut topo = Topology::new();
        let s = topo.add_node("s");
        let u = topo.add_node("u");
        let v = topo.add_node("v");
        let d = topo.add_node("d");
        let bw = Bandwidth::from_mbps(10);
        topo.add_link(
            s,
            u,
            bw,
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        topo.add_link(
            u,
            d,
            bw,
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        topo.add_link(
            s,
            v,
            bw,
            SimDuration::from_millis(5),
            QueueConfig::default(),
        );
        topo.add_link(
            v,
            d,
            bw,
            SimDuration::from_millis(5),
            QueueConfig::default(),
        );
        let via_v = Path::from_nodes(&topo, &[s, v, d]).unwrap();
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        rt.install_path(&via_v, Tag(2));

        let mut sim = Simulator::new(topo, rt, 1);
        sim.set_capture(CaptureConfig::everything());
        sim.add_agent(
            s,
            Box::new(Blaster {
                dst: d,
                tag: Tag(2),
                count: 1,
                data_len: 100,
                sent: 0,
                pace: None,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            d,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();

        assert_eq!(sim.stats().packets_delivered, 1);
        // Wire: 120B at 10Mbps = 96us per hop; 2 hops + 10ms propagation.
        assert_eq!(sim.now(), SimTime::from_nanos(2 * 96_000 + 10_000_000));
        // Forwarded via v, not u.
        let forwarded: Vec<_> = sim
            .captures()
            .iter()
            .filter(|c| c.kind == CaptureKind::Forwarded)
            .map(|c| c.node)
            .collect();
        assert_eq!(forwarded, vec![s, v]);
    }

    #[test]
    fn unroutable_packets_are_counted_not_lost() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let c = topo.add_node("c");
        topo.add_link(
            a,
            b,
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        topo.add_link(
            b,
            c,
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        // No routes installed at all: packets die at the source.
        let rt = RoutingTables::new(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: c,
                tag: Tag::NONE,
                count: 3,
                data_len: 10,
                sent: 0,
                pace: None,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_unroutable, 3);
        assert!(sim.stats().conserved(0));
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, SimTime, u64) {
            let (topo, a, b) = two_node_net(
                Bandwidth::from_mbps(5),
                SimDuration::from_millis(2),
                QueueConfig::DropTailPackets(8),
            );
            let mut rt = RoutingTables::new(&topo);
            rt.install_all_default_routes(&topo);
            let mut sim = Simulator::new(topo, rt, seed);
            sim.add_agent(
                a,
                Box::new(Blaster {
                    dst: b,
                    tag: Tag::NONE,
                    count: 50,
                    data_len: 1200,
                    sent: 0,
                    pace: None,
                }),
                SimTime::ZERO,
            );
            sim.add_agent(
                b,
                Box::new(Sink {
                    received: 0,
                    last_at: SimTime::ZERO,
                }),
                SimTime::ZERO,
            );
            sim.run_to_completion();
            (sim.stats().packets_delivered, sim.now(), sim.stats().events)
        }
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (topo, a, b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(5),
            QueueConfig::DropTailPackets(100),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: b,
                tag: Tag::NONE,
                count: 10,
                data_len: 1000,
                sent: 0,
                pace: None,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            b,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        // First arrival is at 13.16ms; stop before it.
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.now(), SimTime::from_millis(10));
        assert_eq!(sim.stats().packets_delivered, 0);
        assert!(sim.packets_in_flight() > 0);
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 10);
        assert_eq!(sim.packets_in_flight(), 0);
    }

    /// Build a ready-to-run sim over a two-node net with a Blaster at `a`
    /// and a Sink at `b`.
    fn blaster_sim(
        capacity: Bandwidth,
        delay: SimDuration,
        queue: QueueConfig,
        count: u32,
        data_len: u32,
        pace: Option<SimDuration>,
    ) -> Simulator {
        let (topo, a, b) = two_node_net(capacity, delay, queue);
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(Blaster {
                dst: b,
                tag: Tag::NONE,
                count,
                data_len,
                sent: 0,
                pace,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            b,
            Box::new(Sink {
                received: 0,
                last_at: SimTime::ZERO,
            }),
            SimTime::ZERO,
        );
        sim
    }

    #[test]
    fn outage_drops_traffic_then_recovers_conserved() {
        // One packet per 10 ms for 300 ms; the link is out over [95, 145) ms,
        // so the packets sent at 100/110/120/130/140 ms are lost at the
        // interface and everything before/after delivers.
        let mut sim = blaster_sim(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(100),
            30,
            1000,
            Some(SimDuration::from_millis(10)),
        );
        sim.install_faults(&FaultSchedule::new().outage(
            LinkId(0),
            SimTime::from_millis(95),
            SimTime::from_millis(145),
        ));
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_dropped, 5);
        assert_eq!(sim.stats().packets_delivered, 25);
        assert!(sim.stats().conserved(0));
        assert!(sim.link_is_up(LinkId(0)));
    }

    #[test]
    fn stale_txdone_cannot_complete_a_later_transmission() {
        // Packet 1 starts serializing at t=0 (1020 wire bytes at 1 Mbps:
        // TxDone pending at 8.16 ms). The link dies at 4 ms — aborting that
        // serialization — and returns at 5 ms. Packet 2 is sent at 6 ms and
        // must finish at 6 + 8.16 = 14.16 ms; the stale TxDone firing at
        // 8.16 ms carries the pre-abort epoch and must NOT complete it
        // early. Arrival is therefore at 14.16 + 5 (delay) = 19.16 ms.
        let mut sim = blaster_sim(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(5),
            QueueConfig::DropTailPackets(10),
            2,
            1000,
            Some(SimDuration::from_millis(6)),
        );
        sim.install_faults(&FaultSchedule::new().outage(
            LinkId(0),
            SimTime::from_millis(4),
            SimTime::from_millis(5),
        ));
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_dropped, 1);
        assert_eq!(sim.stats().packets_delivered, 1);
        assert_eq!(
            sim.now(),
            SimTime::from_nanos(6_000_000 + 8_160_000 + 5_000_000)
        );
        assert!(sim.stats().conserved(0));
    }

    #[test]
    fn capacity_fault_applies_to_subsequent_transmissions_only() {
        // Two back-to-back packets at t=0. Packet 1 serializes at 1 Mbps
        // (8.16 ms) and keeps that timing even though capacity doubles at
        // 2 ms; packet 2 starts at 8.16 ms at 2 Mbps (4.08 ms). Last
        // arrival: 8.16 + 4.08 + 5 = 17.24 ms.
        let mut sim = blaster_sim(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(5),
            QueueConfig::DropTailPackets(10),
            2,
            1000,
            None,
        );
        sim.schedule_fault(
            SimTime::from_millis(2),
            FaultAction::SetCapacity(LinkId(0), Bandwidth::from_mbps(2)),
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 2);
        assert_eq!(
            sim.now(),
            SimTime::from_nanos(8_160_000 + 4_080_000 + 5_000_000)
        );
    }

    #[test]
    fn delay_fault_changes_propagation_of_later_packets() {
        // Paced packets at 0 and 20 ms; delay is raised from 5 to 15 ms in
        // between. Packet 2 finishes serializing at 28.16 ms and arrives
        // 15 ms later, at 43.16 ms.
        let mut sim = blaster_sim(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(5),
            QueueConfig::DropTailPackets(10),
            2,
            1000,
            Some(SimDuration::from_millis(20)),
        );
        sim.schedule_fault(
            SimTime::from_millis(10),
            FaultAction::SetDelay(LinkId(0), SimDuration::from_millis(15)),
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 2);
        assert_eq!(
            sim.now(),
            SimTime::from_nanos(20_000_000 + 8_160_000 + 15_000_000)
        );
    }

    #[test]
    fn loss_burst_blackholes_window_deterministically() {
        // One packet per 10 ms for 200 ms; loss probability 1.0 over
        // [45, 95) ms kills exactly the packets *serialized* inside the
        // window (sent at 50..=90 ms), five in all.
        let mut sim = blaster_sim(
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(100),
            20,
            1000,
            Some(SimDuration::from_millis(10)),
        );
        sim.install_faults(&FaultSchedule::new().loss_burst(
            LinkId(0),
            SimTime::from_millis(45),
            SimTime::from_millis(95),
            1.0,
        ));
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_dropped, 5);
        assert_eq!(sim.stats().packets_delivered, 15);
        assert!(sim.stats().conserved(0));
    }

    #[test]
    fn queue_fault_reoffers_buffered_packets_and_drops_excess() {
        // Burst of 10: one serializing, nine buffered. Shrinking the queue
        // to 2 packets at 1 ms keeps the first two buffered packets (FIFO)
        // and drops the other seven, all accounted.
        let mut sim = blaster_sim(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(100),
            10,
            1000,
            None,
        );
        sim.schedule_fault(
            SimTime::from_millis(1),
            FaultAction::SetQueue(LinkId(0), QueueConfig::DropTailPackets(2)),
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 3);
        assert_eq!(sim.stats().packets_dropped, 7);
        assert!(sim.stats().conserved(0));
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn fault_on_unknown_link_rejected_at_install() {
        let (topo, _a, _b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.schedule_fault(SimTime::ZERO, FaultAction::LinkDown(LinkId(9)));
    }

    #[test]
    fn duplex_directions_are_independent() {
        // Blasters at both ends; each direction carries its own traffic
        // without interfering.
        let (topo, a, b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(100),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        struct Both {
            peer: NodeId,
            n: u32,
            got: u64,
        }
        impl Agent for Both {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.n {
                    ctx.send(
                        self.peer,
                        Tag::NONE,
                        Protocol::Raw,
                        Payload::empty(),
                        1000,
                        1,
                    );
                }
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
                self.got += 1;
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _t: u64) {}
        }
        sim.add_agent(
            a,
            Box::new(Both {
                peer: b,
                n: 5,
                got: 0,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            b,
            Box::new(Both {
                peer: a,
                n: 5,
                got: 0,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();
        assert_eq!(sim.stats().packets_delivered, 10);
        assert_eq!(sim.link_stats(LinkId(0), Dir::AtoB).tx_packets, 5);
        assert_eq!(sim.link_stats(LinkId(0), Dir::BtoA).tx_packets, 5);
        // Both directions finished at the same time: equal loads.
        assert_eq!(
            sim.link_stats(LinkId(0), Dir::AtoB).busy_time,
            sim.link_stats(LinkId(0), Dir::BtoA).busy_time
        );
    }

    /// Records every timer delivery. A driver token fires at 5 ms and either
    /// re-arms the target token or cancels it, so the tests below can pin
    /// the *exact* replacement/cancellation semantics of `set_timer_at`.
    struct TimerProbe {
        fired: Vec<(u64, SimTime)>,
        initial: SimTime,
        action: ProbeAction,
    }

    enum ProbeAction {
        Move(SimTime),
        Cancel,
    }

    const PROBE_TARGET: u64 = 7;
    const PROBE_DRIVER: u64 = 0;

    impl Agent for TimerProbe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_at(self.initial, PROBE_TARGET);
            ctx.set_timer_at(SimTime::from_millis(5), PROBE_DRIVER);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.fired.push((token, ctx.now()));
            if token == PROBE_DRIVER {
                match self.action {
                    ProbeAction::Move(at) => ctx.set_timer_at(at, PROBE_TARGET),
                    ProbeAction::Cancel => ctx.cancel_timer(PROBE_TARGET),
                }
            }
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    fn probe_run(
        initial: SimTime,
        action: ProbeAction,
    ) -> (Vec<(u64, SimTime)>, u64, u64, SimTime) {
        let (topo, a, _b) = two_node_net(
            Bandwidth::from_mbps(1),
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        let id = sim.add_agent(
            a,
            Box::new(TimerProbe {
                fired: Vec::new(),
                initial,
                action,
            }),
            SimTime::ZERO,
        );
        sim.run_to_completion();
        let probe = sim
            .agent(id)
            .as_any()
            .and_then(|a| a.downcast_ref::<TimerProbe>())
            .expect("probe agent");
        (
            probe.fired.clone(),
            sim.stats().timers_cancelled,
            sim.events_cancelled(),
            sim.now(),
        )
    }

    #[test]
    fn rearm_later_never_fires_at_the_stale_deadline() {
        // Armed at 10 ms, moved to 20 ms at 5 ms: the 10 ms event is
        // cancelled in the queue, so the target fires exactly once, at
        // exactly 20 ms — never at the superseded 10 ms deadline.
        let ms = SimTime::from_millis;
        let (fired, cancelled, ev_cancelled, end) = probe_run(ms(10), ProbeAction::Move(ms(20)));
        assert_eq!(fired, vec![(PROBE_DRIVER, ms(5)), (PROBE_TARGET, ms(20))]);
        assert_eq!(cancelled, 1, "the superseded deadline must be revoked");
        assert_eq!(ev_cancelled, 1);
        assert_eq!(end, ms(20));
    }

    #[test]
    fn rearm_earlier_fires_at_the_new_deadline_only() {
        // Armed at 20 ms, moved to 10 ms at 5 ms: fires once at 10 ms and
        // the original 20 ms event never runs (the sim ends at 10 ms).
        let ms = SimTime::from_millis;
        let (fired, cancelled, _, end) = probe_run(ms(20), ProbeAction::Move(ms(10)));
        assert_eq!(fired, vec![(PROBE_DRIVER, ms(5)), (PROBE_TARGET, ms(10))]);
        assert_eq!(cancelled, 1);
        assert_eq!(end, ms(10));
    }

    #[test]
    fn cancelled_timer_never_fires() {
        let ms = SimTime::from_millis;
        let (fired, cancelled, ev_cancelled, end) = probe_run(ms(10), ProbeAction::Cancel);
        assert_eq!(fired, vec![(PROBE_DRIVER, ms(5))]);
        assert_eq!(cancelled, 1);
        assert_eq!(ev_cancelled, 1);
        assert_eq!(
            end,
            ms(5),
            "sim must drain once the cancelled event is gone"
        );
    }
}

#[cfg(test)]
mod proptests {
    //! Simulator invariants under randomized traffic.
    use super::*;
    use proptest::prelude::*;
    use simbase::{Bandwidth, SimDuration, SimTime};

    /// An agent that sends a scripted list of (start_offset_us, size) raw
    /// packets to a fixed destination.
    struct Script {
        dst: NodeId,
        sends: Vec<(u64, u32)>,
        next: usize,
    }

    impl Agent for Script {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            if !self.sends.is_empty() {
                ctx.set_timer_after(SimDuration::from_micros(self.sends[0].0), 0);
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            let (_, size) = self.sends[self.next];
            ctx.send(
                self.dst,
                Tag::NONE,
                Protocol::Raw,
                Payload::empty(),
                size,
                1,
            );
            self.next += 1;
            if self.next < self.sends.len() {
                let gap = self.sends[self.next]
                    .0
                    .saturating_sub(self.sends[self.next - 1].0);
                ctx.set_timer_after(SimDuration::from_micros(gap.max(1)), 0);
            }
        }
    }

    struct Sink;
    impl Agent for Sink {
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Conservation: every packet sent is delivered, dropped, or
        /// unroutable once the network drains — for arbitrary bursts, link
        /// speeds, and queue sizes.
        #[test]
        fn packet_conservation(
            cap_kbps in 64u64..50_000,
            delay_us in 0u64..20_000,
            queue in 1usize..64,
            sends in proptest::collection::vec((0u64..300_000, 1u32..2000), 1..120),
        ) {
            let mut sends = sends;
            sends.sort_by_key(|s| s.0);
            let mut topo = Topology::new();
            let a = topo.add_node("a");
            let b = topo.add_node("b");
            topo.add_link(
                a,
                b,
                Bandwidth::from_kbps(cap_kbps),
                SimDuration::from_micros(delay_us),
                QueueConfig::DropTailPackets(queue),
            );
            let mut rt = RoutingTables::new(&topo);
            rt.install_all_default_routes(&topo);
            let mut sim = Simulator::new(topo, rt, 1);
            let n = sends.len() as u64;
            sim.add_agent(a, Box::new(Script { dst: b, sends, next: 0 }), SimTime::ZERO);
            sim.add_agent(b, Box::new(Sink), SimTime::ZERO);
            sim.run_to_completion();
            prop_assert_eq!(sim.stats().packets_sent, n);
            prop_assert!(sim.stats().conserved(0));
            prop_assert_eq!(sim.packets_in_flight(), 0);
        }

        /// Capacity: the bytes a link serializes over any run never exceed
        /// capacity x busy-time accounting (utilization <= 1).
        #[test]
        fn link_never_exceeds_capacity(
            cap_kbps in 64u64..10_000,
            sends in proptest::collection::vec((0u64..100_000, 100u32..1500), 1..80),
        ) {
            let mut sends = sends;
            sends.sort_by_key(|s| s.0);
            let mut topo = Topology::new();
            let a = topo.add_node("a");
            let b = topo.add_node("b");
            topo.add_link(
                a,
                b,
                Bandwidth::from_kbps(cap_kbps),
                SimDuration::from_micros(100),
                QueueConfig::DropTailPackets(16),
            );
            let mut rt = RoutingTables::new(&topo);
            rt.install_all_default_routes(&topo);
            let mut sim = Simulator::new(topo, rt, 1);
            sim.add_agent(a, Box::new(Script { dst: b, sends, next: 0 }), SimTime::ZERO);
            sim.add_agent(b, Box::new(Sink), SimTime::ZERO);
            sim.run_to_completion();
            let st = sim.link_stats(LinkId(0), Dir::AtoB);
            let elapsed = sim.now().saturating_since(SimTime::ZERO);
            prop_assert!(st.utilization(elapsed) <= 1.0 + 1e-9);
            // Busy time equals exactly the serialization time of tx bytes
            // (integer arithmetic: per-packet rounding up, so >= ideal).
            let ideal_ns = st.tx_bytes as u128 * 8 * 1_000_000_000 / (cap_kbps as u128 * 1000);
            prop_assert!(st.busy_time.as_nanos() as u128 >= ideal_ns);
        }

        /// FIFO: packets on one path are delivered in send order (no
        /// reordering inside the network when jitter is off).
        #[test]
        fn fifo_delivery_order(
            sends in proptest::collection::vec((0u64..50_000, 1u32..1500), 2..60),
        ) {
            let mut sends = sends;
            sends.sort_by_key(|s| s.0);
            let mut topo = Topology::new();
            let a = topo.add_node("a");
            let m = topo.add_node("m");
            let b = topo.add_node("b");
            let bw = Bandwidth::from_mbps(2);
            topo.add_link(a, m, bw, SimDuration::from_micros(500), QueueConfig::DropTailPackets(200));
            topo.add_link(m, b, bw, SimDuration::from_micros(500), QueueConfig::DropTailPackets(200));
            let mut rt = RoutingTables::new(&topo);
            rt.install_all_default_routes(&topo);
            let mut sim = Simulator::new(topo, rt, 1);
            sim.set_capture(CaptureConfig::receiver_side(b));
            sim.add_agent(a, Box::new(Script { dst: b, sends, next: 0 }), SimTime::ZERO);
            sim.add_agent(b, Box::new(Sink), SimTime::ZERO);
            sim.run_to_completion();
            let ids: Vec<u64> = sim
                .captures()
                .iter()
                .filter(|c| c.kind == CaptureKind::Delivered)
                .map(|c| c.pkt.id)
                .collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(ids, sorted, "in-order delivery violated");
        }
    }
}
