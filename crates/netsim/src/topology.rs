//! Network topology: nodes and duplex links with capacities, delays and
//! queue configurations.
//!
//! A [`Topology`] is a passive description; the [`crate::sim::Simulator`]
//! instantiates runtime state (queues, busy flags) from it. Keeping the two
//! separate lets one topology be solved by `lpsolve` and simulated by
//! `netsim` with no duplication — the LP ground truth and the packet
//! simulation are guaranteed to describe the same network.

use crate::packet::{LinkId, NodeId};
use crate::queue::QueueConfig;
use simbase::{Bandwidth, SimDuration};
use std::collections::BTreeMap;
use std::fmt;

/// Static description of one duplex link.
#[derive(Debug, Clone)]
pub struct LinkSpec {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Capacity, applied independently per direction (full duplex).
    pub capacity: Bandwidth,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Output queue configuration, per direction.
    pub queue: QueueConfig,
    /// Independent per-packet corruption-loss probability (wireless model);
    /// 0 for wired links. Applied after serialization, before propagation.
    pub loss_rate: f64,
}

impl LinkSpec {
    /// Given one endpoint, return the other. Panics if `n` is not an endpoint.
    pub fn other_end(&self, n: NodeId) -> NodeId {
        if n == self.a {
            self.b
        } else if n == self.b {
            self.a
        } else {
            panic!("{n:?} is not an endpoint of this link");
        }
    }

    /// True if `n` is one of the endpoints.
    pub fn touches(&self, n: NodeId) -> bool {
        n == self.a || n == self.b
    }
}

/// Static description of one node.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Human-readable name (unique).
    pub name: String,
}

/// An undirected multigraph of nodes and duplex links.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<NodeInfo>,
    links: Vec<LinkSpec>,
    /// adjacency[n] = (neighbor, link) pairs, in insertion order.
    adj: Vec<Vec<(NodeId, LinkId)>>,
    // BTreeMap: name lookups are deterministic to traverse and Topology
    // stays free of per-process hash seeds (simlint: hash-iter).
    by_name: BTreeMap<String, NodeId>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with a unique name.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate node name {name:?}"
        );
        let id = NodeId(self.nodes.len() as u32); // simlint: allow(truncating-cast, reason = "id allocation: a topology with 2^32 nodes is out of scope by design")
        self.by_name.insert(name.clone(), id);
        self.nodes.push(NodeInfo { name });
        self.adj.push(Vec::new());
        id
    }

    /// Add a duplex link between two distinct nodes.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity: Bandwidth,
        delay: SimDuration,
        queue: QueueConfig,
    ) -> LinkId {
        assert!(a != b, "self-loop links are not allowed");
        assert!((a.0 as usize) < self.nodes.len(), "unknown node {a:?}");
        assert!((b.0 as usize) < self.nodes.len(), "unknown node {b:?}");
        assert!(capacity.as_bps() > 0, "zero-capacity link");
        let id = LinkId(self.links.len() as u32); // simlint: allow(truncating-cast, reason = "id allocation: a topology with 2^32 links is out of scope by design")
        self.links.push(LinkSpec {
            a,
            b,
            capacity,
            delay,
            queue,
            loss_rate: 0.0,
        });
        self.adj[a.0 as usize].push((b, id));
        self.adj[b.0 as usize].push((a, id));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All node ids, in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId) // simlint: allow(truncating-cast, reason = "node ids were allocated as u32, so the count fits")
    }

    /// All link ids, in creation order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len() as u32).map(LinkId) // simlint: allow(truncating-cast, reason = "link ids were allocated as u32, so the count fits")
    }

    /// Node metadata.
    pub fn node(&self, n: NodeId) -> &NodeInfo {
        &self.nodes[n.0 as usize]
    }

    /// Link metadata.
    pub fn link(&self, l: LinkId) -> &LinkSpec {
        &self.links[l.0 as usize]
    }

    /// Give a link an independent per-packet loss probability (both
    /// directions) — the standard first-order model of a wireless hop.
    /// `1.0` is allowed: a fully lossy (blackholed) link.
    pub fn set_link_loss(&mut self, l: LinkId, loss_rate: f64) {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate in [0, 1]");
        self.links[l.0 as usize].loss_rate = loss_rate;
    }

    /// Change a link's capacity (both directions). Used by the fault layer
    /// to model mid-run renegotiation; transmissions already serializing
    /// keep the timing they started with.
    pub fn set_link_capacity(&mut self, l: LinkId, capacity: Bandwidth) {
        assert!(capacity.as_bps() > 0, "zero-capacity link");
        self.links[l.0 as usize].capacity = capacity;
    }

    /// Change a link's one-way propagation delay (both directions).
    pub fn set_link_delay(&mut self, l: LinkId, delay: SimDuration) {
        self.links[l.0 as usize].delay = delay;
    }

    /// Replace a link's queue configuration. Only the *spec* changes here;
    /// the simulator owns the runtime queues and rebuilds them when this is
    /// applied as a fault.
    pub fn set_link_queue(&mut self, l: LinkId, queue: QueueConfig) {
        self.links[l.0 as usize].queue = queue;
    }

    /// Look a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Neighbors of `n` as `(neighbor, link)` pairs.
    pub fn neighbors(&self, n: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[n.0 as usize]
    }

    /// The first link between `a` and `b`, if any.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adj[a.0 as usize]
            .iter()
            .find(|(nbr, _)| *nbr == b)
            .map(|(_, l)| *l)
    }

    /// Sum of one-way delays along a sequence of links.
    pub fn path_delay(&self, links: &[LinkId]) -> SimDuration {
        links
            .iter()
            .fold(SimDuration::ZERO, |acc, &l| acc + self.link(l).delay)
    }

    /// The minimum capacity along a sequence of links (a path's raw
    /// bottleneck, ignoring sharing).
    pub fn path_capacity(&self, links: &[LinkId]) -> Bandwidth {
        links
            .iter()
            .map(|&l| self.link(l).capacity)
            .min()
            .unwrap_or(Bandwidth::ZERO)
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Topology: {} nodes, {} links",
            self.node_count(),
            self.link_count()
        )?;
        for (i, l) in self.links.iter().enumerate() {
            writeln!(
                f,
                "  l{}: {} -- {}  {} delay={} queue={:?}",
                i,
                self.node(l.a).name,
                self.node(l.b).name,
                l.capacity,
                l.delay,
                l.queue,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let c = t.add_node("c");
        t.add_link(
            a,
            b,
            Bandwidth::from_mbps(10),
            SimDuration::from_millis(1),
            QueueConfig::default(),
        );
        t.add_link(
            b,
            c,
            Bandwidth::from_mbps(20),
            SimDuration::from_millis(2),
            QueueConfig::default(),
        );
        (t, a, b, c)
    }

    #[test]
    fn builder_assigns_sequential_ids() {
        let (t, a, b, c) = line3();
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert_eq!(c, NodeId(2));
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.node(b).name, "b");
    }

    #[test]
    fn lookup_by_name() {
        let (t, a, ..) = line3();
        assert_eq!(t.node_by_name("a"), Some(a));
        assert_eq!(t.node_by_name("zz"), None);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (t, a, b, c) = line3();
        assert_eq!(t.neighbors(a), &[(b, LinkId(0))]);
        assert_eq!(t.neighbors(b), &[(a, LinkId(0)), (c, LinkId(1))]);
        assert_eq!(t.link_between(a, b), Some(LinkId(0)));
        assert_eq!(t.link_between(b, a), Some(LinkId(0)));
        assert_eq!(t.link_between(a, c), None);
    }

    #[test]
    fn other_end_works() {
        let (t, a, b, _) = line3();
        let l = t.link(LinkId(0));
        assert_eq!(l.other_end(a), b);
        assert_eq!(l.other_end(b), a);
        assert!(l.touches(a));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_end_panics_for_stranger() {
        let (t, _, _, c) = line3();
        let _ = t.link(LinkId(0)).other_end(c);
    }

    #[test]
    fn path_delay_and_capacity() {
        let (t, ..) = line3();
        let links = [LinkId(0), LinkId(1)];
        assert_eq!(t.path_delay(&links), SimDuration::from_millis(3));
        assert_eq!(t.path_capacity(&links), Bandwidth::from_mbps(10));
        assert_eq!(t.path_capacity(&[]), Bandwidth::ZERO);
    }

    #[test]
    #[should_panic(expected = "duplicate node name")]
    fn duplicate_names_rejected() {
        let mut t = Topology::new();
        t.add_node("x");
        t.add_node("x");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        t.add_link(
            a,
            a,
            Bandwidth::from_mbps(1),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
    }

    #[test]
    fn link_loss_rate_is_settable() {
        let (mut t, ..) = line3();
        assert_eq!(t.link(LinkId(0)).loss_rate, 0.0);
        t.set_link_loss(LinkId(0), 0.02);
        assert_eq!(t.link(LinkId(0)).loss_rate, 0.02);
    }

    #[test]
    fn fully_lossy_link_is_allowed() {
        // The documented range is [0, 1]: a blackholed link is a legal
        // (if hostile) configuration, not a programming error.
        let (mut t, ..) = line3();
        t.set_link_loss(LinkId(0), 1.0);
        assert_eq!(t.link(LinkId(0)).loss_rate, 1.0);
        t.set_link_loss(LinkId(0), 0.0);
        assert_eq!(t.link(LinkId(0)).loss_rate, 0.0);
    }

    #[test]
    #[should_panic(expected = "loss rate in [0, 1]")]
    fn invalid_loss_rate_rejected() {
        let (mut t, ..) = line3();
        t.set_link_loss(LinkId(0), 1.5);
    }

    #[test]
    fn parallel_links_are_allowed() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        let l1 = t.add_link(
            a,
            b,
            Bandwidth::from_mbps(1),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        let l2 = t.add_link(
            a,
            b,
            Bandwidth::from_mbps(2),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        assert_ne!(l1, l2);
        assert_eq!(t.neighbors(a).len(), 2);
    }

    #[test]
    fn display_lists_links() {
        let (t, ..) = line3();
        let s = format!("{t}");
        assert!(s.contains("3 nodes, 2 links"));
        assert!(s.contains("a -- b"));
    }
}
