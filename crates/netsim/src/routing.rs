//! Forwarding tables and route installation.
//!
//! Each node owns a [`Fib`] consulted per packet, in priority order:
//!
//! 1. **Exact tag route** `(destination, tag) → link` — the paper's tagging
//!    mechanism: deterministic, per-tag forwarding.
//! 2. **Default route** `destination → link` — shortest path, used by
//!    untagged traffic and as a fallback.
//! 3. **ECMP group** `destination → {links}` — hash of the packet's flow key
//!    selects among equal-cost next hops (the alternative tagging substrate
//!    mentioned in the paper, where tags are realized through ECMP hashing).
//!
//! [`install_path`] writes tag routes for a path in both directions so that
//! ACKs of a tagged subflow retrace the same path — matching the Mininet
//! setup where each subflow's five-tuple is pinned to one route.

use crate::packet::{LinkId, NodeId, Packet, Tag};
use crate::paths::{shortest_path, Path};
use crate::topology::Topology;
use std::collections::BTreeMap;

/// Per-node forwarding information base.
///
/// Backed by `BTreeMap` so that iteration (diagnostics, future dump/export)
/// is in key order and the structure is deterministic across processes —
/// `HashMap`'s per-process seed would make any traversal order a hidden
/// source of nondeterminism (enforced by simlint's `hash-iter` rule).
#[derive(Debug, Clone, Default)]
pub struct Fib {
    exact: BTreeMap<(NodeId, Tag), LinkId>,
    default_route: BTreeMap<NodeId, LinkId>,
    ecmp: BTreeMap<NodeId, Vec<LinkId>>,
    ecmp_seed: u64,
}

/// The ECMP member index for a flow: Fibonacci hash of the flow key mixed
/// with the switch's seed. Seed 0 reproduces the historical unseeded hash
/// (XOR with 0 is the identity), so existing topologies are unaffected.
///
/// This function is the *specification* of ECMP selection: generators that
/// pre-compute the path a flow will take (e.g. `worldgen`'s fat-tree path
/// extractor) call it with the same arguments the FIB uses at forwarding
/// time, and the two must agree by construction.
pub fn ecmp_select(flow_hash: u64, seed: u64, group_len: usize) -> usize {
    debug_assert!(group_len > 0);
    let h = (flow_hash ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize % group_len
}

impl Fib {
    /// Empty FIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set this node's ECMP hash seed (see [`ecmp_select`]). Distinct seeds
    /// per switch model independent hardware hash functions — without them,
    /// every switch in a layered fabric would make correlated choices and
    /// ECMP collisions would be systematically under- or over-counted.
    pub fn set_ecmp_seed(&mut self, seed: u64) {
        self.ecmp_seed = seed;
    }

    /// This node's ECMP hash seed.
    pub fn ecmp_seed(&self) -> u64 {
        self.ecmp_seed
    }

    /// The ECMP group towards `dst`, if one is installed.
    pub fn ecmp_group(&self, dst: NodeId) -> Option<&[LinkId]> {
        self.ecmp.get(&dst).map(Vec::as_slice)
    }

    /// Install an exact `(dst, tag)` route. Later installs overwrite.
    pub fn set_tag_route(&mut self, dst: NodeId, tag: Tag, out: LinkId) {
        self.exact.insert((dst, tag), out);
    }

    /// Install the default route towards `dst`.
    pub fn set_default_route(&mut self, dst: NodeId, out: LinkId) {
        self.default_route.insert(dst, out);
    }

    /// Install an ECMP group towards `dst` (replaces any previous group).
    pub fn set_ecmp_group(&mut self, dst: NodeId, outs: Vec<LinkId>) {
        assert!(!outs.is_empty(), "empty ECMP group");
        self.ecmp.insert(dst, outs);
    }

    /// Route a packet: exact tag route, then default, then ECMP hash.
    pub fn route(&self, pkt: &Packet) -> Option<LinkId> {
        if pkt.tag.is_tagged() {
            if let Some(&l) = self.exact.get(&(pkt.dst, pkt.tag)) {
                return Some(l);
            }
        }
        if let Some(group) = self.ecmp.get(&pkt.dst) {
            // Deterministic flow hash -> group member. Fibonacci hashing
            // spreads consecutive flow keys across members.
            return Some(group[ecmp_select(pkt.flow_hash, self.ecmp_seed, group.len())]);
        }
        self.default_route.get(&pkt.dst).copied()
    }

    /// Number of exact tag routes (diagnostics).
    pub fn tag_route_count(&self) -> usize {
        self.exact.len()
    }
}

/// The set of FIBs for a topology, indexed by node.
#[derive(Debug, Clone, Default)]
pub struct RoutingTables {
    fibs: Vec<Fib>,
}

impl RoutingTables {
    /// One empty FIB per node.
    pub fn new(topo: &Topology) -> Self {
        RoutingTables {
            fibs: vec![Fib::new(); topo.node_count()],
        }
    }

    /// The FIB of `node`.
    pub fn fib(&self, node: NodeId) -> &Fib {
        &self.fibs[node.0 as usize]
    }

    /// Mutable FIB of `node`.
    pub fn fib_mut(&mut self, node: NodeId) -> &mut Fib {
        &mut self.fibs[node.0 as usize]
    }

    /// Install tag routes for `path` under `tag`, forward **and** reverse,
    /// so data and ACKs of the tagged subflow use the same physical route.
    pub fn install_path(&mut self, path: &Path, tag: Tag) {
        assert!(tag.is_tagged(), "cannot install a path under Tag::NONE");
        let dst = path.dst();
        let src = path.src();
        let nodes = path.nodes();
        let links = path.links();
        for i in 0..links.len() {
            // Forward direction: at nodes[i], towards dst via links[i].
            self.fib_mut(nodes[i]).set_tag_route(dst, tag, links[i]);
            // Reverse direction: at nodes[i+1], towards src via links[i].
            self.fib_mut(nodes[i + 1]).set_tag_route(src, tag, links[i]);
        }
    }

    /// Compute shortest paths (by delay) from every node to `dst` and
    /// install them as default routes. O(nodes * Dijkstra); fine for the
    /// evaluation-scale topologies.
    pub fn install_default_routes_to(&mut self, topo: &Topology, dst: NodeId) {
        for n in topo.node_ids() {
            if n == dst {
                continue;
            }
            if let Some(p) = shortest_path(topo, n, dst) {
                self.fib_mut(n).set_default_route(dst, p.links()[0]);
            }
        }
    }

    /// Install default routes between all node pairs.
    pub fn install_all_default_routes(&mut self, topo: &Topology) {
        for dst in topo.node_ids() {
            self.install_default_routes_to(topo, dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Protocol;
    use crate::payload::Payload;
    use crate::queue::QueueConfig;
    use simbase::{Bandwidth, SimDuration};

    fn pkt(dst: NodeId, tag: Tag, flow_hash: u64) -> Packet {
        Packet {
            id: 0,
            src: NodeId(0),
            dst,
            tag,
            protocol: Protocol::Raw,
            payload: Payload::empty(),
            data_len: 0,
            flow_hash,
            ecn: crate::packet::Ecn::NotEct,
        }
    }

    fn diamond() -> (Topology, NodeId, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let u = t.add_node("u");
        let v = t.add_node("v");
        let d = t.add_node("d");
        let bw = Bandwidth::from_mbps(10);
        let ms = SimDuration::from_millis;
        t.add_link(s, u, bw, ms(1), QueueConfig::default());
        t.add_link(u, d, bw, ms(1), QueueConfig::default());
        t.add_link(s, v, bw, ms(5), QueueConfig::default());
        t.add_link(v, d, bw, ms(5), QueueConfig::default());
        (t, s, u, v, d)
    }

    #[test]
    fn tag_route_beats_default() {
        let (t, s, _u, v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        rt.install_all_default_routes(&t);
        let via_v = Path::from_nodes(&t, &[s, v, d]).unwrap();
        rt.install_path(&via_v, Tag(7));

        // Untagged: default (shortest) route via u -> link 0.
        assert_eq!(rt.fib(s).route(&pkt(d, Tag::NONE, 1)), Some(LinkId(0)));
        // Tagged: pinned route via v -> link 2.
        assert_eq!(rt.fib(s).route(&pkt(d, Tag(7), 1)), Some(LinkId(2)));
        // Unknown tag falls back to default.
        assert_eq!(rt.fib(s).route(&pkt(d, Tag(9), 1)), Some(LinkId(0)));
    }

    #[test]
    fn install_path_covers_reverse_direction() {
        let (t, s, _u, v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        let via_v = Path::from_nodes(&t, &[s, v, d]).unwrap();
        rt.install_path(&via_v, Tag(7));
        // ACK from d back to s with the same tag goes via v (link 3 then 2).
        assert_eq!(rt.fib(d).route(&pkt(s, Tag(7), 1)), Some(LinkId(3)));
        assert_eq!(rt.fib(v).route(&pkt(s, Tag(7), 1)), Some(LinkId(2)));
    }

    #[test]
    fn default_routes_reach_everywhere() {
        let (t, s, u, v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        rt.install_all_default_routes(&t);
        for from in [s, u, v] {
            assert!(
                rt.fib(from).route(&pkt(d, Tag::NONE, 0)).is_some(),
                "{from:?} -> d missing"
            );
        }
        assert!(rt.fib(d).route(&pkt(s, Tag::NONE, 0)).is_some());
    }

    #[test]
    fn no_route_returns_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(
            a,
            b,
            Bandwidth::from_mbps(1),
            SimDuration::ZERO,
            QueueConfig::default(),
        );
        let rt = RoutingTables::new(&t);
        assert_eq!(rt.fib(a).route(&pkt(b, Tag::NONE, 0)), None);
    }

    #[test]
    fn ecmp_is_deterministic_per_flow_and_spreads() {
        let (t, s, _u, _v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        rt.fib_mut(s).set_ecmp_group(d, vec![LinkId(0), LinkId(2)]);
        let mut counts = [0usize; 2];
        for flow in 0..100 {
            let l1 = rt.fib(s).route(&pkt(d, Tag::NONE, flow)).unwrap();
            let l2 = rt.fib(s).route(&pkt(d, Tag::NONE, flow)).unwrap();
            assert_eq!(l1, l2, "same flow must hash to same member");
            counts[if l1 == LinkId(0) { 0 } else { 1 }] += 1;
        }
        assert!(
            counts[0] > 20 && counts[1] > 20,
            "hash should spread: {counts:?}"
        );
    }

    #[test]
    fn ecmp_seed_zero_reproduces_the_unseeded_hash() {
        for flow in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
            for len in [1usize, 2, 3, 8] {
                let h = flow.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                assert_eq!(ecmp_select(flow, 0, len), (h >> 32) as usize % len);
            }
        }
    }

    #[test]
    fn ecmp_seeds_decorrelate_switch_choices() {
        // Two switches with different seeds must not pick the same member
        // index for every flow (that correlation is what per-switch seeds
        // exist to break); each individually stays deterministic.
        let (t, s, _u, _v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        rt.fib_mut(s).set_ecmp_group(d, vec![LinkId(0), LinkId(2)]);
        rt.fib_mut(s).set_ecmp_seed(0x1234_5678_9ABC_DEF0);
        assert_eq!(rt.fib(s).ecmp_seed(), 0x1234_5678_9ABC_DEF0);
        let mut differs = 0;
        for flow in 0..200u64 {
            let seeded = ecmp_select(flow, 0x1234_5678_9ABC_DEF0, 2);
            let unseeded = ecmp_select(flow, 0, 2);
            if seeded != unseeded {
                differs += 1;
            }
            // The FIB must apply its own seed.
            let routed = rt.fib(s).route(&pkt(d, Tag::NONE, flow)).unwrap();
            let expect = [LinkId(0), LinkId(2)][seeded];
            assert_eq!(routed, expect);
        }
        assert!(differs > 40, "seed changed only {differs}/200 choices");
    }

    #[test]
    #[should_panic(expected = "Tag::NONE")]
    fn installing_untagged_path_panics() {
        let (t, s, u, _v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        let p = Path::from_nodes(&t, &[s, u, d]).unwrap();
        rt.install_path(&p, Tag::NONE);
    }

    #[test]
    fn tag_route_count_tracks() {
        let (t, s, _u, v, d) = diamond();
        let mut rt = RoutingTables::new(&t);
        let p = Path::from_nodes(&t, &[s, v, d]).unwrap();
        rt.install_path(&p, Tag(1));
        // 2 hops -> 2 forward entries at s and v, 2 reverse at d and v.
        assert_eq!(rt.fib(s).tag_route_count(), 1);
        assert_eq!(rt.fib(v).tag_route_count(), 2);
        assert_eq!(rt.fib(d).tag_route_count(), 1);
    }
}
