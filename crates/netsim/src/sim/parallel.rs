//! Conservative parallel execution: shard one simulation across regions.
//!
//! [`Simulator::run_parallel`] partitions the topology into regions (see
//! [`crate::partition`]), runs each region on its own thread with its own
//! event queue, and synchronizes them with the classic conservative
//! (Chandy–Misra–Bryant style) argument:
//!
//! * Every cut link has a *delay floor* — the minimum propagation delay it
//!   can take over the whole run (its static delay, lowered by any
//!   scheduled `SetDelay` fault). The **lookahead** `L` is the minimum
//!   floor over all cut links.
//! * A packet crossing a cut leaves its sender at some time `t` and arrives
//!   no earlier than `t + L`. So while a region executes events inside the
//!   window `[kL, (k+1)L)`, any arrival it *produces* for a peer lands at
//!   `(k+1)L` or later — never inside the peer's current window.
//! * Regions therefore run windows in lock-step: execute window `k`, flush
//!   cross-region arrivals, broadcast `Horizon(k)`, and only then may any
//!   region enter window `k+1` (after draining every peer's channel up to
//!   `Horizon(k)`). When a region starts window `k+1` it has provably
//!   received every event that can occur before `(k+2)L`.
//!
//! Determinism does not come from the protocol alone — channels deliver
//! arrivals in real-time-dependent interleavings. It comes from the
//! *canonical event keys* (see [`super::order`]): a handed-off arrival is
//! enqueued under the exact `(time, key)` it would have had in a serial
//! run, and the per-entity RNG streams make every draw independent of
//! execution order. The merged run is byte-identical to the serial one.
//!
//! A parallel run consumes the schedule: events still pending at the
//! deadline remain parked in the (discarded) region queues, so the
//! simulator cannot be stepped further afterwards. All end-of-run
//! accounting (stats, captures, link state, agent state) is merged back
//! exactly; only the event log's interleaving of *equal-time* records may
//! differ from a serial run, and a duplicated fault action logs once per
//! endpoint region.

use super::{Event, Simulator};
use crate::agent::AgentId;
use crate::capture::CaptureRecord;
use crate::faults::FaultAction;
use crate::packet::{Dir, LinkId, Packet};
use crate::partition::{partition_from_map, partition_topology, static_delay_floors, Partition};
use simbase::{EventLog, LogRecord, ScheduledEvent, SimDuration, SimTime};
use std::sync::mpsc;

/// A message from one region to another.
#[derive(Debug)]
pub(crate) enum RegionMsg {
    /// A packet finished serializing on a cut link and will arrive at a
    /// node the receiving region owns. `key` is the arrival's canonical
    /// key, computed by the sender (it owns the direction's arrival
    /// counter), so the receiver enqueues it under the exact `(time, key)`
    /// a serial run would have used.
    Arrive {
        time: SimTime,
        key: u64,
        link: LinkId,
        dir: Dir,
        pkt: Box<Packet>,
    },
    /// The sender finished window `k` and flushed every arrival it will
    /// ever produce for windows `≤ k + 1`.
    Horizon(u64),
}

impl Simulator {
    /// Run until `deadline` across up to `regions` parallel regions,
    /// producing byte-identical results to [`Simulator::run_until`].
    ///
    /// The topology is partitioned by greedy min-cut over link delay
    /// floors; `regions <= 1` (or a topology that cannot be split with a
    /// non-zero lookahead) falls back to the serial path. Must be called
    /// on a pristine simulator — agents and faults installed, but nothing
    /// stepped yet.
    pub fn run_parallel(&mut self, deadline: SimTime, regions: usize) {
        if regions <= 1 {
            self.run_until(deadline);
            return;
        }
        let (drained, floors) = self.begin_parallel();
        let part = partition_topology(&self.topo, regions, &floors);
        self.run_partitioned(deadline, part, drained);
    }

    /// [`Simulator::run_parallel`] with an explicit node→region map
    /// instead of the greedy partitioner — for tests and experiments that
    /// force a particular cut (e.g. through a shared bottleneck).
    pub fn run_parallel_with_map(&mut self, deadline: SimTime, node_region: &[u32]) {
        let (drained, floors) = self.begin_parallel();
        let part = partition_from_map(&self.topo, node_region, &floors);
        self.run_partitioned(deadline, part, drained);
    }

    /// Drain the pristine schedule and compute per-link delay floors
    /// (static delays lowered by any scheduled `SetDelay` fault).
    fn begin_parallel(&mut self) -> (Vec<ScheduledEvent<Event>>, Vec<SimDuration>) {
        // simlint: allow(panic-surface, reason = "documented precondition, checked before any event executes")
        assert!(
            self.node_region.is_none(),
            "simulator is already a region of a partitioned run"
        );
        // simlint: allow(panic-surface, reason = "documented precondition, checked before any event executes")
        assert!(
            self.now == SimTime::ZERO && self.stats.events == 0 && self.in_flight == 0,
            "run_parallel requires a pristine simulator: partition before stepping"
        );
        let mut drained = Vec::new();
        while let Some(ev) = self.events.pop() {
            drained.push(ev);
        }
        let mut floors = static_delay_floors(&self.topo);
        for ev in &drained {
            if let Event::Fault(action) = &ev.event {
                if let FaultAction::SetDelay(l, d) = **action {
                    if let Some(f) = floors.get_mut(l.0 as usize) {
                        *f = (*f).min(d);
                    }
                }
            }
        }
        (drained, floors)
    }

    /// Execute the partitioned run: build regions, distribute the
    /// schedule, run the window loop on scoped threads, merge back.
    fn run_partitioned(
        &mut self,
        deadline: SimTime,
        part: Partition,
        drained: Vec<ScheduledEvent<Event>>,
    ) {
        let r = part.regions as usize;
        if r <= 1 {
            // Nothing to shard: restore the schedule and run serially. The
            // re-pushes were already counted once by the original pushes.
            self.extra_scheduled -= drained.len() as i64;
            for ev in drained {
                self.events.push_keyed(ev.time, ev.seq, ev.event);
            }
            self.run_until(deadline);
            return;
        }
        let drained_count = drained.len() as u64;

        let mut sims: Vec<Simulator> = (0..part.regions)
            .map(|i| self.build_region(i, &part, r))
            .collect();
        for (i, (slot, &node)) in self.agents.iter_mut().zip(&self.agent_node).enumerate() {
            if let Some(agent) = slot.take() {
                let owner = part.region_of(node) as usize;
                sims[owner].agents[i] = Some(agent); // simlint: allow(panic-surface, reason = "region_of < part.regions and the region's agent tables mirror self's, both by construction")
            }
        }

        // Distribute the initial schedule. A fault on a cut link is
        // duplicated into both endpoint regions (each owns one direction of
        // the link and must see the mutation); the copies carry the same
        // canonical key, and the merge below un-double-counts them.
        let mut dup_pushed = 0u64;
        let mut dup_fired = 0u64;
        for ev in drained {
            match ev.event {
                Event::StartAgent(id) => {
                    let owner = part.region_of(self.agent_node[id.0 as usize]) as usize; // simlint: allow(panic-surface, reason = "AgentId was issued by add_agent, so the index is in range")
                    sims[owner] // simlint: allow(panic-surface, reason = "region_of is < part.regions by construction")
                        .events
                        .push_keyed(ev.time, ev.seq, Event::StartAgent(id));
                }
                Event::Fault(action) => {
                    let spec = self.topo.link(action.link());
                    let (ra, rb) = (
                        part.region_of(spec.a) as usize,
                        part.region_of(spec.b) as usize,
                    );
                    if rb != ra {
                        sims[rb] // simlint: allow(panic-surface, reason = "region_of is < part.regions by construction")
                            .events
                            .push_keyed(ev.time, ev.seq, Event::Fault(action.clone()));
                        dup_pushed += 1;
                        if ev.time <= deadline {
                            dup_fired += 1;
                        }
                    }
                    sims[ra] // simlint: allow(panic-surface, reason = "region_of is < part.regions by construction")
                        .events
                        .push_keyed(ev.time, ev.seq, Event::Fault(action));
                }
                other => panic!("pristine simulator held a runtime event: {other:?}"), // simlint: allow(panic-surface, reason = "reachable only through a corrupted pristine state; aborting beats simulating garbage")
            }
        }

        // Window schedule. `None` lookahead means the regions are
        // disconnected components: one unbounded window, no waiting.
        let window_ns = part.lookahead.map(|l| l.as_nanos()).unwrap_or(u64::MAX);
        debug_assert!(window_ns > 0, "partitioner admitted a zero lookahead");
        let windows = deadline.as_nanos() / window_ns + 1; // simlint: allow(panic-surface, reason = "the partitioner rejects zero lookahead, so window_ns >= 1")

        // One channel per ordered region pair: txs[i][j] sends i→j (None on
        // the diagonal), rxs[j] holds region j's receive ends.
        let mut rxs: Vec<Vec<mpsc::Receiver<RegionMsg>>> = (0..r).map(|_| Vec::new()).collect();
        let txs: Vec<Vec<Option<mpsc::Sender<RegionMsg>>>> = (0..r)
            .map(|i| {
                rxs.iter_mut()
                    .enumerate()
                    .map(|(j, peer_rxs)| {
                        (i != j).then(|| {
                            let (tx, rx) = mpsc::channel();
                            peer_rxs.push(rx);
                            tx
                        })
                    })
                    .collect()
            })
            .collect();

        let mut done: Vec<Simulator> = Vec::with_capacity(r);
        // simlint: allow(thread, reason = "regions are data-parallel over disjoint state; merge order below is fixed by region id, not completion order")
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(r);
            for ((mut sim, rx), tx) in sims.into_iter().zip(rxs).zip(txs) {
                // simlint: allow(thread, reason = "worker owns its region exclusively; cross-region effects travel only through the keyed channel protocol")
                handles.push(scope.spawn(move || {
                    sim.run_region(deadline, window_ns, windows, &rx, &tx);
                    sim
                }));
            }
            for handle in handles {
                // simlint: allow(unwrap, reason = "a panicked region already poisoned the run; re-raise instead of merging partial results")
                done.push(handle.join().expect("region worker panicked"));
            }
        });

        self.merge_regions(done, &part, drained_count, dup_pushed, dup_fired);
        self.now = deadline;
        self.check_conservation();
    }

    /// A region simulator: same topology, routing, seed, and derived
    /// tables as `self`, configured to hand cross-region arrivals off.
    fn build_region(&self, region: u32, part: &Partition, n_regions: usize) -> Simulator {
        let mut sim = Simulator::new(self.topo.clone(), self.routing.clone(), self.seed);
        for (i, &node) in (0u32..).zip(&self.agent_node) {
            sim.agents.push(None);
            sim.agent_node.push(node);
            sim.timer_keys.push(Vec::new());
            sim.push_agent_tables(AgentId(i));
        }
        sim.node_agent = self.node_agent.clone();
        sim.capture_cfg = self.capture_cfg.clone();
        sim.forward_jitter = self.forward_jitter;
        sim.log = EventLog::new(self.log.min_level());
        sim.region = region;
        sim.node_region = Some(part.node_region.clone());
        sim.outbox = (0..n_regions).map(|_| Vec::new()).collect();
        sim
    }

    /// The per-region worker loop: execute fixed windows of width
    /// `window_ns`, exchanging arrivals and horizons at each boundary.
    fn run_region(
        &mut self,
        deadline: SimTime,
        window_ns: u64,
        windows: u64,
        inbound: &[mpsc::Receiver<RegionMsg>],
        outbound: &[Option<mpsc::Sender<RegionMsg>>],
    ) {
        for k in 0..windows {
            if k > 0 {
                // Entering window k: every peer has flushed all arrivals
                // that can land before (k+1)·L.
                for rx in inbound {
                    self.drain_until(rx, k - 1);
                }
            }
            let end = (k as u128 + 1) * window_ns as u128;
            let bound = SimTime::from_nanos((end - 1).min(deadline.as_nanos() as u128) as u64);
            while let Some(t) = self.events.peek_time() {
                if t > bound {
                    break;
                }
                self.step();
            }
            self.flush_outbox(outbound, k);
        }
        // Final horizons: collect arrivals past the deadline so scheduling
        // accounts (and in-flight packets) match the serial run exactly.
        for rx in inbound {
            self.drain_until(rx, windows - 1);
        }
        self.now = self.now.max(deadline);
    }

    /// Receive from one peer until its `Horizon(horizon)` marker,
    /// enqueueing handed-off arrivals under their canonical keys.
    fn drain_until(&mut self, rx: &mpsc::Receiver<RegionMsg>, horizon: u64) {
        loop {
            // simlint: allow(unwrap, reason = "a hung-up peer means a worker died; propagate the panic rather than deadlock")
            match rx.recv().expect("peer region hung up mid-run") {
                RegionMsg::Arrive {
                    time,
                    key,
                    link,
                    dir,
                    pkt,
                } => {
                    let wire_slot = self.wire_put(*pkt);
                    self.events.push_keyed(
                        time,
                        key,
                        Event::Arrive {
                            link,
                            dir,
                            wire_slot,
                        },
                    );
                }
                RegionMsg::Horizon(k) => {
                    // simlint: allow(panic-surface, reason = "a skewed horizon is an unrecoverable protocol bug; aborting beats silently desynchronized regions")
                    assert_eq!(k, horizon, "horizon protocol out of step");
                    return;
                }
            }
        }
    }

    /// Send this window's cross-region arrivals, then the horizon marker.
    fn flush_outbox(&mut self, outbound: &[Option<mpsc::Sender<RegionMsg>>], k: u64) {
        for (tx, pending) in outbound.iter().zip(&mut self.outbox) {
            let Some(tx) = tx else { continue };
            for msg in pending.drain(..) {
                // simlint: allow(unwrap, reason = "a hung-up peer means a worker died; propagate the panic rather than lose the arrival silently")
                tx.send(msg).expect("peer region hung up mid-run");
            }
            let horizon = RegionMsg::Horizon(k);
            // simlint: allow(unwrap, reason = "a hung-up peer means a worker died; propagate the panic rather than stall the horizon protocol")
            tx.send(horizon).expect("peer region hung up mid-run");
        }
    }

    /// Fold the finished regions back into `self`, reproducing exactly the
    /// state a serial run would have left: stats and counters sum (minus
    /// duplicated fault copies), per-direction link state comes from the
    /// direction's owner, and captures interleave by their canonical
    /// `(time, event key, intra-event index)` stamps.
    fn merge_regions(
        &mut self,
        mut regions: Vec<Simulator>,
        part: &Partition,
        drained_count: u64,
        dup_pushed: u64,
        dup_fired: u64,
    ) {
        // Global counters.
        for sim in &regions {
            self.stats.events += sim.stats.events;
            self.stats.packets_sent += sim.stats.packets_sent;
            self.stats.packets_delivered += sim.stats.packets_delivered;
            self.stats.packets_dropped += sim.stats.packets_dropped;
            self.stats.packets_unroutable += sim.stats.packets_unroutable;
            self.stats.timers_fired += sim.stats.timers_fired;
            self.stats.timers_cancelled += sim.stats.timers_cancelled;
            self.in_flight += sim.in_flight;
        }
        self.stats.events -= dup_fired;
        let pushed: u64 = regions.iter().map(|s| s.events.total_pushed()).sum();
        self.extra_scheduled += pushed as i64 - dup_pushed as i64 - drained_count as i64;
        self.extra_cancelled += regions
            .iter()
            .map(|s| s.events.total_cancelled())
            .sum::<u64>();

        // Agents and their derived tables return from their owner regions.
        for i in 0..self.agents.len() {
            let owner = part.region_of(self.agent_node[i]) as usize; // simlint: allow(panic-surface, reason = "agent tables are index-aligned: i < agents.len() == agent_node.len()")
            let sim = &mut regions[owner]; // simlint: allow(panic-surface, reason = "region_of < part.regions == regions.len() by construction")
            self.agents[i] = sim.agents[i].take(); // simlint: allow(panic-surface, reason = "every region's agent tables mirror self's, index for index")
            self.timer_keys[i] = std::mem::take(&mut sim.timer_keys[i]); // simlint: allow(panic-surface, reason = "every region's agent tables mirror self's, index for index")
            self.agent_rngs[i] = sim.agent_rngs[i].clone(); // simlint: allow(panic-surface, reason = "every region's agent tables mirror self's, index for index")
            self.agent_packet_seq[i] = sim.agent_packet_seq[i]; // simlint: allow(panic-surface, reason = "every region's agent tables mirror self's, index for index")
        }

        // Per-direction link state comes from the direction's owner: the
        // region of the transmitting node. Both endpoint regions track a
        // cut link's administrative state identically (they see the same
        // fault copies), so either copy of `up` serves.
        for l in self.topo.link_ids() {
            let spec = self.topo.link(l);
            let li = l.0 as usize;
            let owner = [
                part.region_of(spec.a) as usize, // transmits AtoB
                part.region_of(spec.b) as usize, // transmits BtoA
            ];
            for d in 0..2 {
                let sim = &mut regions[owner[d]]; // simlint: allow(panic-surface, reason = "d < 2 and region_of < regions.len() by construction")
                self.link_stats[li][d] = sim.link_stats[li][d]; // simlint: allow(panic-surface, reason = "link tables are sized to the topology and d < 2")
                std::mem::swap(&mut self.links[li].dirs[d], &mut sim.links[li].dirs[d]); // simlint: allow(panic-surface, reason = "link tables are sized to the topology and d < 2")
                self.dir_rngs[li][d] = sim.dir_rngs[li][d].clone(); // simlint: allow(panic-surface, reason = "link tables are sized to the topology and d < 2")
                self.arrive_seq[li][d] = sim.arrive_seq[li][d]; // simlint: allow(panic-surface, reason = "link tables are sized to the topology and d < 2")
            }
            self.links[li].up = regions[owner[0]].links[li].up; // simlint: allow(panic-surface, reason = "link tables are sized to the topology; owner has two entries")
        }
        // Fault mutations were applied to region topology copies; replay
        // the owners' view so post-run `topology()` inspection matches.
        for l in self.topo.link_ids() {
            let spec = regions[part.region_of(self.topo.link(l).a) as usize] // simlint: allow(panic-surface, reason = "region_of < part.regions == regions.len() by construction")
                .topo
                .link(l)
                .clone();
            self.topo.set_link_capacity(l, spec.capacity);
            self.topo.set_link_delay(l, spec.delay);
            self.topo.set_link_loss(l, spec.loss_rate);
            self.topo.set_link_queue(l, spec.queue);
        }

        // Captures merge into exact serial order: every record was stamped
        // with (event canonical key, intra-event index), and live keys are
        // unique per timestamp, so (time, key, sub) is a total order.
        let mut tagged: Vec<((SimTime, u64, u32), CaptureRecord)> = Vec::new();
        for sim in &mut regions {
            let recs = std::mem::take(&mut sim.captures);
            let ords = std::mem::take(&mut sim.capture_ord);
            debug_assert_eq!(recs.len(), ords.len());
            for (rec, (key, sub)) in recs.into_iter().zip(ords) {
                tagged.push(((rec.time, key, sub), rec));
            }
        }
        tagged.sort_unstable_by_key(|entry| entry.0);
        for ((_, key, sub), rec) in tagged {
            self.captures.push(rec);
            self.capture_ord.push((key, sub));
        }

        // Logs merge chronologically (stable within a region; equal-time
        // interleaving across regions is diagnostic-only, see module doc).
        let mut recs: Vec<LogRecord> = Vec::new();
        for sim in &mut regions {
            recs.append(&mut sim.log.take_records());
        }
        recs.sort_by_key(|rec| rec.time);
        for rec in recs {
            self.log.push_record(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::order;
    use crate::agent::{Agent, Ctx};
    use crate::capture::{CaptureConfig, CaptureKind};
    use crate::packet::{NodeId, Packet, Protocol, Tag};
    use crate::payload::Payload;
    use crate::queue::QueueConfig;
    use crate::routing::RoutingTables;
    use crate::sim::Simulator;
    use crate::topology::Topology;
    use simbase::{Bandwidth, SimDuration, SimTime};

    /// A pinger that sends one packet to `peer` every interval and echoes
    /// nothing — enough traffic to cross the cut in both directions.
    struct Pinger {
        peer: NodeId,
        interval: SimDuration,
        sent: u32,
        received: u32,
    }

    impl Agent for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer_after(self.interval, 1);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            ctx.send(self.peer, Tag(7), Protocol::Raw, Payload::empty(), 1000, 0);
            self.sent += 1;
            ctx.set_timer_after(self.interval, token);
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    /// a — 1ms — b — 5ms — c — 1ms — d, pingers on a and d.
    fn build() -> Simulator {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("n{i}"))).collect();
        for (i, ms) in [1u64, 5, 1].iter().enumerate() {
            t.add_link(
                nodes[i],
                nodes[i + 1],
                Bandwidth::from_mbps(10),
                SimDuration::from_millis(*ms),
                QueueConfig::default(),
            );
        }
        let mut routing = RoutingTables::new(&t);
        routing.install_all_default_routes(&t);
        let mut sim = Simulator::new(t, routing, 42);
        sim.set_capture(CaptureConfig::everything());
        sim.add_agent(
            nodes[0],
            Box::new(Pinger {
                peer: nodes[3],
                interval: SimDuration::from_millis(3),
                sent: 0,
                received: 0,
            }),
            SimTime::ZERO,
        );
        sim.add_agent(
            nodes[3],
            Box::new(Pinger {
                peer: nodes[0],
                interval: SimDuration::from_millis(4),
                sent: 0,
                received: 0,
            }),
            SimTime::ZERO,
        );
        sim
    }

    fn capture_fingerprint(sim: &Simulator) -> Vec<(SimTime, NodeId, CaptureKind, u64)> {
        sim.captures()
            .iter()
            .map(|r| (r.time, r.node, r.kind, r.pkt.id))
            .collect()
    }

    #[test]
    fn two_regions_match_serial_exactly() {
        let deadline = SimTime::from_millis(200);
        let mut serial = build();
        serial.run_until(deadline);
        let mut par = build();
        par.run_parallel_with_map(deadline, &[0, 0, 1, 1]);
        assert_eq!(capture_fingerprint(&serial), capture_fingerprint(&par));
        assert_eq!(serial.stats().events, par.stats().events);
        assert_eq!(serial.stats().packets_sent, par.stats().packets_sent);
        assert_eq!(
            serial.stats().packets_delivered,
            par.stats().packets_delivered
        );
        assert_eq!(serial.events_scheduled(), par.events_scheduled());
        assert_eq!(serial.events_cancelled(), par.events_cancelled());
        assert_eq!(serial.packets_in_flight(), par.packets_in_flight());
    }

    #[test]
    fn greedy_partition_matches_serial() {
        let deadline = SimTime::from_millis(150);
        let mut serial = build();
        serial.run_until(deadline);
        let mut par = build();
        par.run_parallel(deadline, 2);
        assert_eq!(capture_fingerprint(&serial), capture_fingerprint(&par));
        assert_eq!(serial.stats().events, par.stats().events);
    }

    #[test]
    fn one_region_request_falls_back_to_serial() {
        let deadline = SimTime::from_millis(50);
        let mut serial = build();
        serial.run_until(deadline);
        let mut par = build();
        par.run_parallel(deadline, 1);
        assert_eq!(capture_fingerprint(&serial), capture_fingerprint(&par));
        assert_eq!(serial.events_scheduled(), par.events_scheduled());
    }

    #[test]
    fn faulted_cut_link_matches_serial() {
        let deadline = SimTime::from_millis(120);
        let mut serial = build();
        serial.schedule_link_down(crate::packet::LinkId(1), SimTime::from_millis(30));
        serial.schedule_link_up(crate::packet::LinkId(1), SimTime::from_millis(60));
        serial.run_until(deadline);
        let mut par = build();
        par.schedule_link_down(crate::packet::LinkId(1), SimTime::from_millis(30));
        par.schedule_link_up(crate::packet::LinkId(1), SimTime::from_millis(60));
        par.run_parallel_with_map(deadline, &[0, 0, 1, 1]);
        assert_eq!(capture_fingerprint(&serial), capture_fingerprint(&par));
        assert_eq!(serial.stats().events, par.stats().events);
        assert_eq!(serial.stats().packets_dropped, par.stats().packets_dropped);
        assert_eq!(
            serial.link_is_up(crate::packet::LinkId(1)),
            par.link_is_up(crate::packet::LinkId(1))
        );
    }

    #[test]
    #[should_panic(expected = "pristine")]
    fn parallel_after_stepping_is_rejected() {
        let mut sim = build();
        sim.run_until(SimTime::from_millis(10));
        sim.run_parallel(SimTime::from_millis(20), 2);
    }

    #[test]
    fn canonical_keys_are_disjoint_across_classes() {
        // A canonical key's class field dominates, so faults at an instant
        // precede starts, which precede packet events, which precede timers.
        let f = order::pack(order::CLASS_FAULT, 0, u64::MAX >> 28);
        let s = order::pack(order::CLASS_START, (1 << 25) - 1, 0);
        let x = order::pack(order::CLASS_TX_DONE, 0, 0);
        let a = order::pack(order::CLASS_ARRIVE, 0, 0);
        let t = order::pack(order::CLASS_TIMER, 0, 0);
        assert!(f < s && s < x && x < a && a < t);
    }
}
