//! Packets and their identifiers.
//!
//! A [`Packet`] models one IP datagram. The transport header it carries is
//! *really encoded* (see `tcpsim::wire`) into [`Packet::payload`], but bulk
//! application data is represented by a length only — the simulator charges
//! links for [`Packet::wire_size`] bytes while keeping memory flat. This is
//! the standard packet-level simulation compromise (ns-3 does the same with
//! virtual payloads).

use crate::payload::Payload;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Index of a (duplex) link in the topology.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Direction of travel across a duplex link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// From endpoint `a` to endpoint `b` (as given at link creation).
    AtoB,
    /// From endpoint `b` to endpoint `a`.
    BtoA,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::AtoB => Dir::BtoA,
            Dir::BtoA => Dir::AtoB,
        }
    }

    /// Stable small index (0 or 1) for per-direction arrays.
    pub fn index(self) -> usize {
        match self {
            Dir::AtoB => 0,
            Dir::BtoA => 1,
        }
    }
}

/// A routing tag, the paper's path-selection mechanism.
///
/// Tags are short identifiers carried in the packet header; forwarding is
/// deterministic per `(destination, tag)` pair. `Tag::NONE` (0) means
/// untagged traffic, which follows the default route.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Tag(pub u16);

impl Tag {
    /// The untagged value; follows default/ECMP routes.
    pub const NONE: Tag = Tag(0);

    /// True if this is a real tag (non-zero).
    pub fn is_tagged(self) -> bool {
        self.0 != 0
    }
}

/// ECN codepoint of a packet (RFC 3168, two-bit field collapsed to the
/// three meaningful states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Ecn {
    /// Not ECN-capable transport: congestion is signalled by dropping.
    #[default]
    NotEct,
    /// ECN-capable: queues may mark instead of dropping.
    Ect,
    /// Congestion experienced: a queue marked this packet.
    Ce,
}

/// The transport protocol carried by a packet (drives demultiplexing at the
/// destination agent and pretty-printing in traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// A TCP segment; `payload` holds the encoded header (`tcpsim::wire`).
    Tcp,
    /// An opaque datagram (test traffic, probe packets).
    Raw,
}

/// Overhead charged per packet for the network-layer header, in bytes.
/// (20-byte IPv4-like header; we do not model IP options.)
pub const IP_HEADER_BYTES: u32 = 20;

/// One datagram in flight.
#[derive(Clone)]
pub struct Packet {
    /// Globally unique packet id (assigned by the simulator at send time).
    pub id: u64,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Routing tag (0 = untagged).
    pub tag: Tag,
    /// Transport protocol of the payload.
    pub protocol: Protocol,
    /// Encoded transport header bytes (not the bulk data). Inline up to
    /// [`crate::payload::INLINE_CAP`] bytes, so cloning a packet in flight
    /// does not allocate.
    pub payload: Payload,
    /// Bytes of *virtual* application data represented by this packet.
    pub data_len: u32,
    /// ECMP flow key: a stable hash input identifying the 5-tuple-ish flow.
    pub flow_hash: u64,
    /// ECN codepoint.
    pub ecn: Ecn,
}

impl Packet {
    /// Total bytes this packet occupies on the wire:
    /// IP-like overhead + encoded transport header + virtual payload.
    pub fn wire_size(&self) -> u32 {
        // simlint: allow(unwrap, reason = "a transport header beyond u32::MAX bytes is a stack bug; truncating it would silently shrink serialization times")
        let header = u32::try_from(self.payload.len()).expect("transport header exceeds u32::MAX");
        IP_HEADER_BYTES + header + self.data_len
    }

    /// Cheap copy of the identifying metadata (for capture records).
    pub fn meta(&self) -> PacketMeta {
        PacketMeta {
            id: self.id,
            src: self.src,
            dst: self.dst,
            tag: self.tag,
            protocol: self.protocol,
            wire_size: self.wire_size(),
            data_len: self.data_len,
            ecn: self.ecn,
        }
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Packet#{}[{:?}->{:?} tag={} {:?} {}B]",
            self.id,
            self.src,
            self.dst,
            self.tag.0,
            self.protocol,
            self.wire_size()
        )
    }
}

/// Identifying metadata of a packet, recorded by capture points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketMeta {
    /// Globally unique packet id.
    pub id: u64,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Routing tag.
    pub tag: Tag,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Total on-wire size in bytes.
    pub wire_size: u32,
    /// Virtual application payload length in bytes.
    pub data_len: u32,
    /// ECN codepoint at capture time.
    pub ecn: Ecn,
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl fmt::Debug for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag{}", self.0)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet(payload_len: usize, data_len: u32) -> Packet {
        Packet {
            id: 1,
            src: NodeId(0),
            dst: NodeId(5),
            tag: Tag(3),
            protocol: Protocol::Tcp,
            payload: Payload::from(vec![0u8; payload_len]),
            data_len,
            flow_hash: 42,
            ecn: Ecn::NotEct,
        }
    }

    #[test]
    fn wire_size_accounts_for_all_layers() {
        let p = sample_packet(20, 1460);
        assert_eq!(p.wire_size(), 20 + 20 + 1460);
        let ack = sample_packet(20, 0);
        assert_eq!(ack.wire_size(), 40);
    }

    #[test]
    fn meta_matches_packet() {
        let p = sample_packet(24, 1000);
        let m = p.meta();
        assert_eq!(m.id, p.id);
        assert_eq!(m.wire_size, p.wire_size());
        assert_eq!(m.tag, Tag(3));
        assert_eq!(m.data_len, 1000);
    }

    #[test]
    fn tag_semantics() {
        assert!(!Tag::NONE.is_tagged());
        assert!(Tag(1).is_tagged());
        assert_eq!(Tag::default(), Tag::NONE);
    }

    #[test]
    fn dir_flip_and_index() {
        assert_eq!(Dir::AtoB.flip(), Dir::BtoA);
        assert_eq!(Dir::BtoA.flip(), Dir::AtoB);
        assert_eq!(Dir::AtoB.index(), 0);
        assert_eq!(Dir::BtoA.index(), 1);
    }

    #[test]
    fn debug_formats_are_compact() {
        let p = sample_packet(20, 0);
        let s = format!("{p:?}");
        assert!(s.contains("tag=3"), "{s}");
        assert!(s.contains("40B"), "{s}");
    }
}
