//! Paths through a topology, path enumeration, and overlap analysis.
//!
//! The paper's core object is a *set of partially overlapping paths*: the
//! pairwise shared links become coupling constraints on per-path throughput.
//! [`Path`] is a validated node/link walk; [`all_simple_paths`] and
//! [`k_shortest_paths`] (Yen's algorithm) enumerate candidates; and
//! [`SharingAnalysis`] extracts exactly which links are shared by which
//! subsets of paths — the input to `lpsolve`'s constraint generation.

use crate::packet::{LinkId, NodeId};
use crate::topology::Topology;
use simbase::{Bandwidth, SimDuration};
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::fmt;

/// A simple (loop-free) walk from a source to a destination.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    links: Vec<LinkId>,
}

/// Errors constructing a [`Path`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// Fewer than two nodes.
    TooShort,
    /// Two consecutive nodes have no connecting link.
    NoLink(NodeId, NodeId),
    /// A node repeats (the walk is not simple).
    NotSimple(NodeId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::TooShort => write!(f, "path needs at least two nodes"),
            PathError::NoLink(a, b) => write!(f, "no link between {a:?} and {b:?}"),
            PathError::NotSimple(n) => write!(f, "node {n:?} repeats"),
        }
    }
}

impl std::error::Error for PathError {}

impl Path {
    /// Build a path from a node sequence, resolving links via the topology.
    /// Uses the first link between each consecutive pair.
    pub fn from_nodes(topo: &Topology, nodes: &[NodeId]) -> Result<Path, PathError> {
        if nodes.len() < 2 {
            return Err(PathError::TooShort);
        }
        let mut seen = BTreeSet::new();
        for &n in nodes {
            if !seen.insert(n) {
                return Err(PathError::NotSimple(n));
            }
        }
        let mut links = Vec::with_capacity(nodes.len() - 1);
        for w in nodes.windows(2) {
            let l = topo
                .link_between(w[0], w[1])
                .ok_or(PathError::NoLink(w[0], w[1]))?;
            links.push(l);
        }
        Ok(Path {
            nodes: nodes.to_vec(),
            links,
        })
    }

    /// Build from explicit links (for multigraphs where `from_nodes` would
    /// pick the wrong parallel link).
    pub fn from_links(topo: &Topology, src: NodeId, links: &[LinkId]) -> Result<Path, PathError> {
        if links.is_empty() {
            return Err(PathError::TooShort);
        }
        let mut nodes = vec![src];
        let mut cur = src;
        for &l in links {
            let spec = topo.link(l);
            if !spec.touches(cur) {
                return Err(PathError::NoLink(cur, spec.a));
            }
            cur = spec.other_end(cur);
            nodes.push(cur);
        }
        let mut seen = BTreeSet::new();
        for &n in &nodes {
            if !seen.insert(n) {
                return Err(PathError::NotSimple(n));
            }
        }
        Ok(Path {
            nodes,
            links: links.to_vec(),
        })
    }

    /// Source node.
    pub fn src(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    pub fn dst(&self) -> NodeId {
        // A Path always has >= 2 nodes (enforced by both constructors).
        self.nodes[self.nodes.len() - 1]
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The link sequence.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Number of hops (links).
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Sum of one-way link delays.
    pub fn one_way_delay(&self, topo: &Topology) -> SimDuration {
        topo.path_delay(&self.links)
    }

    /// Minimum link capacity along the path (ignores sharing).
    pub fn raw_capacity(&self, topo: &Topology) -> Bandwidth {
        topo.path_capacity(&self.links)
    }

    /// Links present in both paths, in this path's order.
    pub fn shared_links(&self, other: &Path) -> Vec<LinkId> {
        let other_set: BTreeSet<LinkId> = other.links.iter().copied().collect();
        self.links
            .iter()
            .copied()
            .filter(|l| other_set.contains(l))
            .collect()
    }

    /// True if the two paths have no link in common.
    pub fn is_link_disjoint(&self, other: &Path) -> bool {
        self.shared_links(other).is_empty()
    }

    /// Render as `a -> b -> c` using topology names.
    pub fn display(&self, topo: &Topology) -> String {
        self.nodes
            .iter()
            .map(|&n| topo.node(n).name.clone())
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// All simple paths from `src` to `dst` with at most `max_hops` links,
/// in lexicographic DFS order (deterministic). Exponential in general —
/// intended for the small evaluation topologies.
pub fn all_simple_paths(topo: &Topology, src: NodeId, dst: NodeId, max_hops: usize) -> Vec<Path> {
    let mut out = Vec::new();
    let mut node_stack = vec![src];
    let mut link_stack: Vec<LinkId> = Vec::new();
    let mut visited: BTreeSet<NodeId> = BTreeSet::from([src]);

    fn dfs(
        topo: &Topology,
        dst: NodeId,
        max_hops: usize,
        node_stack: &mut Vec<NodeId>,
        link_stack: &mut Vec<LinkId>,
        visited: &mut BTreeSet<NodeId>,
        out: &mut Vec<Path>,
    ) {
        let Some(&cur) = node_stack.last() else {
            return; // dfs is only entered with src already on the stack
        };
        if cur == dst {
            out.push(Path {
                nodes: node_stack.clone(),
                links: link_stack.clone(),
            });
            return;
        }
        if link_stack.len() == max_hops {
            return;
        }
        for &(nbr, link) in topo.neighbors(cur) {
            if visited.contains(&nbr) {
                continue;
            }
            visited.insert(nbr);
            node_stack.push(nbr);
            link_stack.push(link);
            dfs(topo, dst, max_hops, node_stack, link_stack, visited, out);
            link_stack.pop();
            node_stack.pop();
            visited.remove(&nbr);
        }
    }

    dfs(
        topo,
        dst,
        max_hops,
        &mut node_stack,
        &mut link_stack,
        &mut visited,
        &mut out,
    );
    out
}

/// Dijkstra shortest path by cumulative delay, with deterministic
/// tie-breaking (lower node id wins). Returns `None` if unreachable.
pub fn shortest_path(topo: &Topology, src: NodeId, dst: NodeId) -> Option<Path> {
    shortest_path_avoiding(topo, src, dst, &BTreeSet::new(), &BTreeSet::new())
}

/// Dijkstra that ignores a set of links and nodes (Yen's spur computation).
fn shortest_path_avoiding(
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    banned_links: &BTreeSet<LinkId>,
    banned_nodes: &BTreeSet<NodeId>,
) -> Option<Path> {
    #[derive(PartialEq, Eq)]
    struct Entry(u64, NodeId); // (dist_ns, node), min-heap via Reverse ordering
    impl Ord for Entry {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            o.0.cmp(&self.0).then_with(|| o.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Entry {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }

    if banned_nodes.contains(&src) || banned_nodes.contains(&dst) {
        return None;
    }
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut prev: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.0 as usize] = 0;
    heap.push(Entry(0, src));

    while let Some(Entry(d, u)) = heap.pop() {
        if d > dist[u.0 as usize] {
            continue;
        }
        if u == dst {
            break;
        }
        for &(v, link) in topo.neighbors(u) {
            if banned_links.contains(&link) || banned_nodes.contains(&v) {
                continue;
            }
            // Cost: delay in ns, +1 so zero-delay links still count a hop
            // (keeps Dijkstra's tie-breaking meaningful on uniform graphs).
            let w = topo.link(link).delay.as_nanos().saturating_add(1);
            let nd = d.saturating_add(w);
            if nd < dist[v.0 as usize] {
                dist[v.0 as usize] = nd;
                prev[v.0 as usize] = Some((u, link));
                heap.push(Entry(nd, v));
            }
        }
    }

    if dist[dst.0 as usize] == u64::MAX {
        return None;
    }
    let mut nodes = vec![dst];
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        // dist[dst] < MAX guarantees an unbroken prev chain back to src;
        // bail out rather than panic if that invariant is ever violated.
        let (p, l) = prev[cur.0 as usize]?;
        nodes.push(p);
        links.push(l);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(Path { nodes, links })
}

/// Yen's algorithm: the k shortest loop-free paths by delay. Deterministic.
pub fn k_shortest_paths(topo: &Topology, src: NodeId, dst: NodeId, k: usize) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    let Some(first) = shortest_path(topo, src, dst) else {
        return result;
    };
    result.push(first);
    // Candidates ordered by (delay_ns, hop_count, node sequence) for
    // deterministic selection.
    let mut candidates: Vec<Path> = Vec::new();

    while result.len() < k {
        let Some(last) = result.last().cloned() else {
            break; // result starts non-empty; defensive for the lint contract
        };
        for i in 0..last.links.len() {
            let spur_node = last.nodes[i];
            let root_nodes = &last.nodes[..=i];
            let root_links = &last.links[..i];

            let mut banned_links = BTreeSet::new();
            for p in &result {
                if p.nodes.len() > i && p.nodes[..=i] == *root_nodes {
                    if let Some(&l) = p.links.get(i) {
                        banned_links.insert(l);
                    }
                }
            }
            let banned_nodes: BTreeSet<NodeId> = root_nodes[..i].iter().copied().collect();

            if let Some(spur) =
                shortest_path_avoiding(topo, spur_node, dst, &banned_links, &banned_nodes)
            {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur.links);
                let total = Path { nodes, links };
                if !result.contains(&total) && !candidates.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by_key(|p| {
            (
                p.one_way_delay(topo).as_nanos(),
                p.hop_count(),
                p.nodes.iter().map(|n| n.0).collect::<Vec<_>>(),
            )
        });
        result.push(candidates.remove(0));
    }
    result
}

/// Which links are shared by which paths: the structural core of the paper.
#[derive(Debug, Clone)]
pub struct SharingAnalysis {
    /// For every link used by ≥1 path: the (sorted) indices of paths using it.
    pub link_users: Vec<(LinkId, Vec<usize>)>,
}

impl SharingAnalysis {
    /// Analyse a path set.
    pub fn new(paths: &[Path]) -> Self {
        // BTreeMap so `into_iter` yields links in id order with no
        // post-sort; path indices are pushed in increasing order already.
        let mut map: BTreeMap<LinkId, Vec<usize>> = BTreeMap::new();
        for (i, p) in paths.iter().enumerate() {
            for &l in p.links() {
                map.entry(l).or_default().push(i);
            }
        }
        let link_users: Vec<(LinkId, Vec<usize>)> = map.into_iter().collect();
        SharingAnalysis { link_users }
    }

    /// Links used by two or more paths, with their user sets.
    pub fn shared(&self) -> impl Iterator<Item = &(LinkId, Vec<usize>)> {
        self.link_users.iter().filter(|(_, users)| users.len() >= 2)
    }

    /// For each unordered path pair `(i, j)` that shares at least one link:
    /// the tightest shared-link capacity — the coefficient of the paper's
    /// `x_i + x_j ≤ c` constraints.
    pub fn pairwise_bottlenecks(&self, topo: &Topology) -> Vec<(usize, usize, LinkId, Bandwidth)> {
        let mut best: BTreeMap<(usize, usize), (LinkId, Bandwidth)> = BTreeMap::new();
        for (link, users) in self.shared() {
            let cap = topo.link(*link).capacity;
            for ai in 0..users.len() {
                for bi in ai + 1..users.len() {
                    let key = (users[ai], users[bi]);
                    match best.get(&key) {
                        Some((_, c)) if *c <= cap => {}
                        _ => {
                            best.insert(key, (*link, cap));
                        }
                    }
                }
            }
        }
        // BTreeMap iterates in (i, j) order: no sort needed.
        best.into_iter()
            .map(|((i, j), (l, c))| (i, j, l, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueConfig;

    /// A diamond: s -> {u, v} -> d, plus a direct long link s -> d.
    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let s = t.add_node("s");
        let u = t.add_node("u");
        let v = t.add_node("v");
        let d = t.add_node("d");
        let ms = SimDuration::from_millis;
        let bw = Bandwidth::from_mbps;
        t.add_link(s, u, bw(10), ms(1), QueueConfig::default());
        t.add_link(u, d, bw(10), ms(1), QueueConfig::default());
        t.add_link(s, v, bw(20), ms(2), QueueConfig::default());
        t.add_link(v, d, bw(20), ms(2), QueueConfig::default());
        t.add_link(s, d, bw(5), ms(10), QueueConfig::default());
        (t, s, d)
    }

    #[test]
    fn from_nodes_resolves_links() {
        let (t, s, d) = diamond();
        let u = t.node_by_name("u").unwrap();
        let p = Path::from_nodes(&t, &[s, u, d]).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.src(), s);
        assert_eq!(p.dst(), d);
        assert_eq!(p.one_way_delay(&t), SimDuration::from_millis(2));
        assert_eq!(p.raw_capacity(&t), Bandwidth::from_mbps(10));
        assert_eq!(p.display(&t), "s -> u -> d");
    }

    #[test]
    fn from_nodes_rejects_bad_walks() {
        let (t, s, _d) = diamond();
        let u = t.node_by_name("u").unwrap();
        let v = t.node_by_name("v").unwrap();
        assert_eq!(Path::from_nodes(&t, &[s]), Err(PathError::TooShort));
        assert_eq!(Path::from_nodes(&t, &[u, v]), Err(PathError::NoLink(u, v)));
        assert_eq!(
            Path::from_nodes(&t, &[s, u, s]),
            Err(PathError::NotSimple(s))
        );
    }

    #[test]
    fn from_links_walks_correctly() {
        let (t, s, d) = diamond();
        let p = Path::from_links(&t, s, &[LinkId(0), LinkId(1)]).unwrap();
        assert_eq!(p.dst(), d);
        assert_eq!(p.nodes().len(), 3);
        assert!(Path::from_links(&t, s, &[LinkId(1)]).is_err()); // u-d doesn't touch s
    }

    #[test]
    fn all_simple_paths_finds_all_three() {
        let (t, s, d) = diamond();
        let paths = all_simple_paths(&t, s, d, 4);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p.src(), s);
            assert_eq!(p.dst(), d);
        }
        // Determinism: same call twice gives identical order.
        let again = all_simple_paths(&t, s, d, 4);
        assert_eq!(paths, again);
    }

    #[test]
    fn max_hops_prunes() {
        let (t, s, d) = diamond();
        let paths = all_simple_paths(&t, s, d, 1);
        assert_eq!(paths.len(), 1); // only the direct link
        assert_eq!(paths[0].hop_count(), 1);
    }

    #[test]
    fn shortest_path_picks_min_delay() {
        let (t, s, d) = diamond();
        let p = shortest_path(&t, s, d).unwrap();
        assert_eq!(p.display(&t), "s -> u -> d"); // 2ms beats 4ms and 10ms
    }

    #[test]
    fn shortest_path_unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        assert!(shortest_path(&t, a, b).is_none());
    }

    #[test]
    fn k_shortest_orders_by_delay() {
        let (t, s, d) = diamond();
        let ps = k_shortest_paths(&t, s, d, 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].display(&t), "s -> u -> d");
        assert_eq!(ps[1].display(&t), "s -> v -> d");
        assert_eq!(ps[2].display(&t), "s -> d");
        let d0 = ps[0].one_way_delay(&t);
        let d1 = ps[1].one_way_delay(&t);
        let d2 = ps[2].one_way_delay(&t);
        assert!(d0 <= d1 && d1 <= d2);
    }

    #[test]
    fn k_shortest_handles_k_larger_than_path_count() {
        let (t, s, d) = diamond();
        let ps = k_shortest_paths(&t, s, d, 10);
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn sharing_analysis_disjoint_paths() {
        let (t, s, d) = diamond();
        let ps = k_shortest_paths(&t, s, d, 2);
        let an = SharingAnalysis::new(&ps);
        assert_eq!(an.shared().count(), 0);
        assert!(ps[0].is_link_disjoint(&ps[1]));
        assert!(an.pairwise_bottlenecks(&t).is_empty());
    }

    #[test]
    fn sharing_analysis_overlapping_paths() {
        // s - m shared by both paths; then m->a->d and m->b->d.
        let mut t = Topology::new();
        let s = t.add_node("s");
        let m = t.add_node("m");
        let a = t.add_node("a");
        let b = t.add_node("b");
        let d = t.add_node("d");
        let bw = Bandwidth::from_mbps;
        let ms = SimDuration::from_millis;
        let shared = t.add_link(s, m, bw(40), ms(1), QueueConfig::default());
        t.add_link(m, a, bw(100), ms(1), QueueConfig::default());
        t.add_link(a, d, bw(100), ms(1), QueueConfig::default());
        t.add_link(m, b, bw(100), ms(1), QueueConfig::default());
        t.add_link(b, d, bw(100), ms(1), QueueConfig::default());
        let p1 = Path::from_nodes(&t, &[s, m, a, d]).unwrap();
        let p2 = Path::from_nodes(&t, &[s, m, b, d]).unwrap();
        assert_eq!(p1.shared_links(&p2), vec![shared]);

        let an = SharingAnalysis::new(&[p1, p2]);
        let bn = an.pairwise_bottlenecks(&t);
        assert_eq!(bn, vec![(0, 1, shared, bw(40))]);
    }
}
