//! Output queues: the component that actually creates the paper's dynamics.
//!
//! Every link direction has one queue. When a packet arrives at a busy link
//! it is offered to the queue, which decides to buffer or drop it. Tail
//! drops at the three shared bottleneck links are the *only* congestion
//! signal in the reproduced experiments, exactly as in the Mininet setup
//! (tc/netem drop-tail). A RED variant is provided for ablations.

use crate::packet::Packet;
use simbase::rng::SimRng;
use simbase::{SimDuration, SimTime};

/// Why a queue refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The buffer was full (drop-tail).
    TailDrop,
    /// RED decided to drop early.
    EarlyDrop,
}

/// The outcome of offering a packet to a queue.
#[derive(Debug)]
pub enum EnqueueResult {
    /// Packet accepted and buffered.
    Queued,
    /// Packet rejected; the caller records the drop.
    Dropped(DropReason),
}

/// The outcome of a dequeue: the packet to transmit (if any) plus packets
/// the queue decided to drop at dequeue time (CoDel's head drops).
#[derive(Debug, Default)]
pub struct Dequeued {
    /// The packet to serialize next.
    pub pkt: Option<Packet>,
    /// Packets discarded by the AQM while finding `pkt`.
    pub dropped: Vec<Packet>,
}

/// A FIFO output queue with an admission policy.
///
/// Implementations must be FIFO — TCP's fast-retransmit logic depends on
/// in-order delivery within a path, and the paper's tag routing guarantees
/// one path per tag.
pub trait Queue: std::fmt::Debug + Send {
    /// Offer `pkt` to the queue at time `now`. `rng` is provided for
    /// randomized AQM.
    fn enqueue(&mut self, now: SimTime, pkt: Packet, rng: &mut dyn SimRng) -> EnqueueResult;

    /// Remove the next packet to transmit at time `now`. Head-dropping AQMs
    /// (CoDel) may also return packets they discarded while deciding.
    fn dequeue(&mut self, now: SimTime) -> Dequeued;

    /// Number of packets currently buffered.
    fn len_packets(&self) -> usize;

    /// Bytes currently buffered (wire sizes).
    fn len_bytes(&self) -> u64;

    /// True if no packets are buffered.
    fn is_empty(&self) -> bool {
        self.len_packets() == 0
    }

    /// Deep-copy the queue (buffered packets and AQM state) for simulator
    /// checkpointing.
    fn clone_boxed(&self) -> Box<dyn Queue>;
}

impl Clone for Box<dyn Queue> {
    fn clone(&self) -> Self {
        self.clone_boxed()
    }
}

/// Configuration for a link's output queue, chosen per link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueConfig {
    /// Classic drop-tail bounded by packet count (Linux `txqueuelen` style).
    DropTailPackets(usize),
    /// Drop-tail bounded by bytes.
    DropTailBytes(u64),
    /// Random Early Detection.
    Red(RedConfig),
    /// CoDel (Controlled Delay, RFC 8289): sojourn-time-based head drops.
    CoDel(CoDelConfig),
}

impl QueueConfig {
    /// Instantiate the queue.
    pub fn build(&self) -> Box<dyn Queue> {
        match *self {
            QueueConfig::DropTailPackets(n) => Box::new(DropTail::packets(n)),
            QueueConfig::DropTailBytes(b) => Box::new(DropTail::bytes(b)),
            QueueConfig::Red(cfg) => Box::new(Red::new(cfg)),
            QueueConfig::CoDel(cfg) => Box::new(CoDel::new(cfg)),
        }
    }
}

impl Default for QueueConfig {
    /// 64 packets: roughly 1.5–2x the bandwidth-delay product of the paper
    /// topology's bottlenecks at millisecond RTTs.
    fn default() -> Self {
        QueueConfig::DropTailPackets(64)
    }
}

/// Drop-tail FIFO, bounded by packets or bytes.
#[derive(Debug, Clone)]
pub struct DropTail {
    buf: std::collections::VecDeque<Packet>,
    bytes: u64,
    max_packets: usize,
    max_bytes: u64,
}

impl DropTail {
    /// Bound by packet count.
    pub fn packets(max_packets: usize) -> Self {
        assert!(max_packets > 0, "queue must hold at least one packet");
        DropTail {
            buf: Default::default(),
            bytes: 0,
            max_packets,
            max_bytes: u64::MAX,
        }
    }

    /// Bound by byte count.
    pub fn bytes(max_bytes: u64) -> Self {
        assert!(max_bytes > 0, "queue must hold at least one byte");
        DropTail {
            buf: Default::default(),
            bytes: 0,
            max_packets: usize::MAX,
            max_bytes,
        }
    }
}

impl Queue for DropTail {
    fn enqueue(&mut self, _now: SimTime, pkt: Packet, _rng: &mut dyn SimRng) -> EnqueueResult {
        let size = pkt.wire_size() as u64;
        // bfifo semantics: an empty buffer always admits its head packet,
        // even one whose wire size alone exceeds `max_bytes` — rejecting it
        // would blackhole that flow permanently, since the same packet
        // would be refused on every retransmission. (Linux bfifo likewise
        // admits while the backlog is under the limit, so the head packet
        // of an empty queue always gets through.)
        let over_bound =
            self.buf.len() + 1 > self.max_packets || self.bytes + size > self.max_bytes;
        if over_bound && !self.buf.is_empty() {
            return EnqueueResult::Dropped(DropReason::TailDrop);
        }
        self.bytes += size;
        self.buf.push_back(pkt);
        EnqueueResult::Queued
    }

    fn dequeue(&mut self, _now: SimTime) -> Dequeued {
        let pkt = self.buf.pop_front();
        if let Some(p) = &pkt {
            self.bytes -= p.wire_size() as u64;
        }
        Dequeued {
            pkt,
            dropped: Vec::new(),
        }
    }

    fn len_packets(&self) -> usize {
        self.buf.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn clone_boxed(&self) -> Box<dyn Queue> {
        Box::new(self.clone())
    }
}

/// RED (Floyd & Jacobson 1993) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// Hard capacity in packets.
    pub max_packets: usize,
    /// Average-queue threshold below which nothing is dropped.
    pub min_thresh: f64,
    /// Average-queue threshold above which everything is dropped.
    pub max_thresh: f64,
    /// Drop probability at `max_thresh`.
    pub max_p: f64,
    /// EWMA weight for the average queue estimate.
    pub weight: f64,
    /// Mark ECN-capable packets (set CE) instead of early-dropping them
    /// (RFC 3168 §5): the AQM signal without the loss.
    pub ecn_marking: bool,
    /// Typical transmission time of one packet, used for Floyd & Jacobson's
    /// idle-time compensation: after the queue has been empty for `idle`,
    /// the average is decayed as if `m = idle / mean_pkt_time` zero-length
    /// samples had been taken (`avg *= (1 - weight)^m`).
    pub mean_pkt_time: SimDuration,
}

impl Default for RedConfig {
    fn default() -> Self {
        RedConfig {
            max_packets: 64,
            min_thresh: 5.0,
            max_thresh: 32.0,
            max_p: 0.1,
            weight: 0.002,
            ecn_marking: false,
            // 1500 B at 100 Mbps.
            mean_pkt_time: SimDuration::from_micros(120),
        }
    }
}

/// Random Early Detection queue (gentle variant not implemented; classic
/// linear ramp between `min_thresh` and `max_thresh`).
#[derive(Debug, Clone)]
pub struct Red {
    inner: DropTail,
    cfg: RedConfig,
    avg: f64,
    /// Packets since the last drop (sharpens inter-drop spacing as in the
    /// original paper's `count` term).
    count: i64,
    /// When the buffer last became empty (None while occupied). Drives the
    /// idle-time decay of `avg` at the next enqueue.
    idle_since: Option<SimTime>,
}

impl Red {
    /// Create a RED queue with the given parameters.
    pub fn new(cfg: RedConfig) -> Self {
        assert!(cfg.min_thresh < cfg.max_thresh, "RED thresholds inverted");
        assert!((0.0..=1.0).contains(&cfg.max_p), "max_p out of range");
        Red {
            inner: DropTail::packets(cfg.max_packets),
            cfg,
            avg: 0.0,
            count: -1,
            idle_since: None,
        }
    }

    /// Current average-queue estimate (for tests/instrumentation).
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }
}

impl Queue for Red {
    fn enqueue(&mut self, now: SimTime, mut pkt: Packet, rng: &mut dyn SimRng) -> EnqueueResult {
        // Idle-time compensation (Floyd & Jacobson 1993, §4): while the
        // buffer sat empty the EWMA saw no samples, so a stale-high `avg`
        // would spuriously early-drop the first packets of a fresh burst.
        // Decay it as if the idle period had contributed zero-length
        // samples every `mean_pkt_time`.
        if let Some(idle_from) = self.idle_since.take() {
            let idle = now.saturating_since(idle_from);
            if self.avg > 0.0 && !idle.is_zero() {
                let m = idle.as_nanos() as f64 / self.cfg.mean_pkt_time.as_nanos().max(1) as f64;
                self.avg *= (1.0 - self.cfg.weight).powf(m);
            }
        }
        // Update the EWMA of the instantaneous queue length.
        self.avg =
            (1.0 - self.cfg.weight) * self.avg + self.cfg.weight * self.inner.len_packets() as f64;

        // Decide whether the AQM wants to signal congestion on this packet.
        let mut signal = false;
        if self.avg >= self.cfg.max_thresh {
            self.count = 0;
            signal = true;
        } else if self.avg > self.cfg.min_thresh {
            self.count += 1;
            let pb = self.cfg.max_p * (self.avg - self.cfg.min_thresh)
                / (self.cfg.max_thresh - self.cfg.min_thresh);
            let pa = (pb / (1.0 - (self.count as f64) * pb).max(1e-9)).clamp(0.0, 1.0);
            if rng.chance(pa) {
                self.count = 0;
                signal = true;
            }
        } else {
            self.count = -1;
        }
        if signal {
            if self.cfg.ecn_marking && pkt.ecn == crate::packet::Ecn::Ect {
                // Mark instead of dropping (RFC 3168).
                pkt.ecn = crate::packet::Ecn::Ce;
            } else {
                if self.inner.is_empty() {
                    // The buffer stays empty: the idle period continues.
                    self.idle_since = Some(now);
                }
                return EnqueueResult::Dropped(DropReason::EarlyDrop);
            }
        }
        match self.inner.enqueue(now, pkt, rng) {
            EnqueueResult::Queued => EnqueueResult::Queued,
            EnqueueResult::Dropped(_) => {
                self.count = 0;
                EnqueueResult::Dropped(DropReason::TailDrop)
            }
        }
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeued {
        let d = self.inner.dequeue(now);
        if self.inner.is_empty() && self.idle_since.is_none() {
            self.idle_since = Some(now);
        }
        d
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn clone_boxed(&self) -> Box<dyn Queue> {
        Box::new(self.clone())
    }
}

/// CoDel parameters (RFC 8289 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoDelConfig {
    /// Hard capacity in packets (a backstop; CoDel itself is unbounded).
    pub max_packets: usize,
    /// Acceptable standing sojourn time.
    pub target: SimDuration,
    /// Sliding window in which the sojourn must fall below target.
    pub interval: SimDuration,
}

impl Default for CoDelConfig {
    fn default() -> Self {
        CoDelConfig {
            max_packets: 1000,
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }
}

/// CoDel (Nichols & Jacobson): drop from the *head* when packets have been
/// sojourning above `target` for at least `interval`, with drop spacing
/// shrinking as `interval / sqrt(count)` while the condition persists.
#[derive(Debug, Clone)]
pub struct CoDel {
    cfg: CoDelConfig,
    buf: std::collections::VecDeque<(Packet, SimTime)>,
    bytes: u64,
    /// When the sojourn time first exceeded target (None = below target).
    first_above: Option<SimTime>,
    /// In the dropping state?
    dropping: bool,
    /// Next scheduled drop time while dropping.
    drop_next: SimTime,
    /// Drops in the current dropping episode.
    count: u32,
}

impl CoDel {
    /// Create a CoDel queue.
    pub fn new(cfg: CoDelConfig) -> Self {
        assert!(cfg.max_packets > 0);
        CoDel {
            cfg,
            buf: Default::default(),
            bytes: 0,
            first_above: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
        }
    }

    fn control_law(&self, t: SimTime) -> SimTime {
        t + self
            .cfg
            .interval
            .mul_f64(1.0 / (self.count.max(1) as f64).sqrt())
    }

    fn pop(&mut self) -> Option<(Packet, SimTime)> {
        let e = self.buf.pop_front()?;
        self.bytes -= e.0.wire_size() as u64;
        Some(e)
    }

    /// Should the head packet be dropped, per the sojourn-time state
    /// machine? Updates `first_above`.
    fn ok_to_drop(&mut self, enq: SimTime, now: SimTime) -> bool {
        let sojourn = now.saturating_since(enq);
        if sojourn < self.cfg.target || self.bytes <= 1500 {
            self.first_above = None;
            return false;
        }
        match self.first_above {
            None => {
                self.first_above = Some(now + self.cfg.interval);
                false
            }
            Some(t) => now >= t,
        }
    }
}

impl Queue for CoDel {
    fn enqueue(&mut self, now: SimTime, pkt: Packet, _rng: &mut dyn SimRng) -> EnqueueResult {
        if self.buf.len() >= self.cfg.max_packets {
            return EnqueueResult::Dropped(DropReason::TailDrop);
        }
        self.bytes += pkt.wire_size() as u64;
        self.buf.push_back((pkt, now));
        EnqueueResult::Queued
    }

    fn dequeue(&mut self, now: SimTime) -> Dequeued {
        let mut dropped = Vec::new();
        let Some((pkt, enq)) = self.pop() else {
            self.dropping = false;
            return Dequeued::default();
        };
        let mut head = Some((pkt, enq));

        if self.dropping {
            if !self.ok_to_drop(enq, now) {
                self.dropping = false;
            } else {
                while now >= self.drop_next && self.dropping {
                    let Some((pkt, _)) = head.take() else {
                        break; // unreachable: every continuing arm refills head
                    };
                    dropped.push(pkt);
                    self.count += 1;
                    match self.pop() {
                        Some((p, e)) if self.ok_to_drop(e, now) => {
                            head = Some((p, e));
                            self.drop_next = self.control_law(self.drop_next);
                        }
                        Some((p, e)) => {
                            head = Some((p, e));
                            self.dropping = false;
                        }
                        None => {
                            self.dropping = false;
                        }
                    }
                }
            }
        } else if self.ok_to_drop(enq, now) {
            // Enter the dropping state with one head drop.
            if let Some((pkt, _)) = head.take() {
                dropped.push(pkt);
            }
            self.dropping = true;
            // RFC 8289: restart from a count related to the previous episode.
            self.count = if self.count > 2 { self.count - 2 } else { 1 };
            self.drop_next = self.control_law(now);
            head = self.pop();
        }

        Dequeued {
            pkt: head.map(|(p, _)| p),
            dropped,
        }
    }

    fn len_packets(&self) -> usize {
        self.buf.len()
    }

    fn len_bytes(&self) -> u64 {
        self.bytes
    }

    fn clone_boxed(&self) -> Box<dyn Queue> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NodeId, Protocol, Tag};
    use crate::payload::Payload;
    use simbase::rng::Xoshiro256StarStar;

    fn pkt(id: u64, data_len: u32) -> Packet {
        Packet {
            id,
            src: NodeId(0),
            dst: NodeId(1),
            tag: Tag::NONE,
            protocol: Protocol::Raw,
            payload: Payload::empty(),
            data_len,
            flow_hash: id,
            ecn: crate::packet::Ecn::NotEct,
        }
    }

    #[test]
    fn droptail_is_fifo() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = DropTail::packets(10);
        for i in 0..5 {
            assert!(matches!(
                q.enqueue(SimTime::ZERO, pkt(i, 100), &mut rng),
                EnqueueResult::Queued
            ));
        }
        let order: Vec<u64> =
            std::iter::from_fn(|| q.dequeue(SimTime::ZERO).pkt.map(|p| p.id)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn droptail_packet_bound_drops_excess() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = DropTail::packets(3);
        for i in 0..3 {
            assert!(matches!(
                q.enqueue(SimTime::ZERO, pkt(i, 0), &mut rng),
                EnqueueResult::Queued
            ));
        }
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(3, 0), &mut rng),
            EnqueueResult::Dropped(DropReason::TailDrop)
        ));
        assert_eq!(q.len_packets(), 3);
    }

    #[test]
    fn droptail_byte_bound_counts_wire_size() {
        let mut rng = Xoshiro256StarStar::new(1);
        // Each pkt: 20 (IP) + 0 (hdr) + 100 data = 120 wire bytes.
        let mut q = DropTail::bytes(300);
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(0, 100), &mut rng),
            EnqueueResult::Queued
        ));
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1, 100), &mut rng),
            EnqueueResult::Queued
        ));
        assert_eq!(q.len_bytes(), 240);
        // Third packet would exceed 300 bytes.
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(2, 100), &mut rng),
            EnqueueResult::Dropped(_)
        ));
        // But a tiny packet still fits (20 bytes wire).
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(3, 0), &mut rng),
            EnqueueResult::Queued
        ));
        assert_eq!(q.len_bytes(), 260);
    }

    #[test]
    fn droptail_byte_accounting_balances() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = DropTail::bytes(10_000);
        for i in 0..10 {
            let _ = q.enqueue(SimTime::ZERO, pkt(i, (i as u32) * 10), &mut rng);
        }
        while q.dequeue(SimTime::ZERO).pkt.is_some() {}
        assert_eq!(q.len_bytes(), 0);
        assert_eq!(q.len_packets(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn droptail_bytes_admits_oversized_head_when_empty() {
        // Regression: a byte-bounded queue used to reject any packet whose
        // wire size exceeded max_bytes even when empty, permanently
        // blackholing the flow (every retransmission hit the same wall).
        // bfifo semantics: the head packet of an empty buffer is admitted.
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = DropTail::bytes(100);
        // 1000 data + 20 IP = 1020 wire bytes > 100-byte bound.
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(0, 1000), &mut rng),
            EnqueueResult::Queued
        ));
        assert_eq!(q.len_bytes(), 1020);
        // The bound still applies once the buffer is occupied.
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(1, 1000), &mut rng),
            EnqueueResult::Dropped(DropReason::TailDrop)
        ));
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(2, 0), &mut rng),
            EnqueueResult::Dropped(DropReason::TailDrop)
        ));
        // Draining re-opens the head slot: the flow makes progress.
        assert_eq!(q.dequeue(SimTime::ZERO).pkt.unwrap().id, 0);
        assert!(matches!(
            q.enqueue(SimTime::ZERO, pkt(3, 1000), &mut rng),
            EnqueueResult::Queued
        ));
    }

    #[test]
    fn red_decays_avg_across_idle_periods() {
        // Regression: the EWMA never decayed while the buffer sat empty, so
        // a stale-high avg early-dropped the first packets after an idle
        // period. With Floyd & Jacobson's idle-time compensation the
        // average is decayed by (1-w)^(idle / mean_pkt_time) at the next
        // enqueue.
        let mut rng = Xoshiro256StarStar::new(5);
        let cfg = RedConfig {
            weight: 0.5,
            min_thresh: 2.0,
            max_thresh: 8.0,
            max_p: 0.5,
            max_packets: 64,
            ..Default::default()
        };
        let mut q = Red::new(cfg);
        // Build pressure: a standing queue pushes avg above min_thresh.
        for i in 0..20 {
            let _ = q.enqueue(SimTime::ZERO, pkt(i, 1000), &mut rng);
        }
        assert!(q.avg_queue() > cfg.min_thresh);
        // Drain completely at t=0; the queue then idles for a full second
        // (~8300 mean packet times at the default 120 us).
        while q.dequeue(SimTime::ZERO).pkt.is_some() {}
        let after_idle = SimTime::from_secs(1);
        // The first post-idle packets must be admitted, not early-dropped
        // off the stale average. (With weight 0.5 the decayed avg needs
        // four+ instantaneous samples to climb back over min_thresh, so
        // three packets are deterministically safe — and with the old code
        // avg would still be > min_thresh and eligible for early drop.)
        for i in 100..103 {
            assert!(
                matches!(
                    q.enqueue(after_idle, pkt(i, 1000), &mut rng),
                    EnqueueResult::Queued
                ),
                "post-idle packet {i} was dropped with avg={}",
                q.avg_queue()
            );
        }
        assert!(
            q.avg_queue() < cfg.min_thresh,
            "idle decay must pull avg back under min_thresh, got {}",
            q.avg_queue()
        );
    }

    #[test]
    fn red_short_idle_decays_partially() {
        // A short gap decays avg a little, not to zero: after m mean packet
        // times the average shrinks by exactly (1-w)^m.
        let mut rng = Xoshiro256StarStar::new(5);
        let cfg = RedConfig {
            weight: 0.5,
            min_thresh: 20.0,
            max_thresh: 40.0,
            ..Default::default()
        };
        let mut q = Red::new(cfg);
        for i in 0..10 {
            let _ = q.enqueue(SimTime::ZERO, pkt(i, 1000), &mut rng);
        }
        let before = q.avg_queue();
        while q.dequeue(SimTime::ZERO).pkt.is_some() {}
        // Idle exactly two mean packet times, then take one zero-length
        // sample: avg = before * (1-w)^2 * (1-w).
        let t = SimTime::from_micros(240);
        let _ = q.enqueue(t, pkt(100, 1000), &mut rng);
        let expected = before * 0.5f64.powi(2) * 0.5;
        assert!(
            (q.avg_queue() - expected).abs() < 1e-12,
            "expected {expected}, got {}",
            q.avg_queue()
        );
    }

    #[test]
    fn red_empty_queue_never_drops() {
        let mut rng = Xoshiro256StarStar::new(5);
        let mut q = Red::new(RedConfig::default());
        for i in 0..4 {
            assert!(matches!(
                q.enqueue(SimTime::ZERO, pkt(i, 1000), &mut rng),
                EnqueueResult::Queued
            ));
            q.dequeue(SimTime::ZERO);
        }
        assert!(q.avg_queue() < 1.0);
    }

    #[test]
    fn red_sustained_overload_drops_early() {
        let mut rng = Xoshiro256StarStar::new(5);
        let cfg = RedConfig {
            weight: 0.5,
            min_thresh: 2.0,
            max_thresh: 8.0,
            max_p: 0.5,
            max_packets: 64,
            ..Default::default()
        };
        let mut q = Red::new(cfg);
        let mut early = 0;
        for i in 0..200 {
            match q.enqueue(SimTime::ZERO, pkt(i, 1000), &mut rng) {
                EnqueueResult::Dropped(DropReason::EarlyDrop) => early += 1,
                EnqueueResult::Dropped(DropReason::TailDrop) => {}
                EnqueueResult::Queued => {}
            }
        }
        assert!(early > 0, "RED should drop early under sustained overload");
    }

    #[test]
    fn queue_config_builds_right_impl() {
        let q = QueueConfig::DropTailPackets(4).build();
        assert_eq!(q.len_packets(), 0);
        let q = QueueConfig::DropTailBytes(1000).build();
        assert!(q.is_empty());
        let q = QueueConfig::Red(RedConfig::default()).build();
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "thresholds inverted")]
    fn red_validates_thresholds() {
        let _ = Red::new(RedConfig {
            min_thresh: 10.0,
            max_thresh: 5.0,
            ..Default::default()
        });
    }

    fn stamped(id: u64) -> Packet {
        pkt(id, 1000)
    }

    #[test]
    fn codel_passes_traffic_below_target() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = CoDel::new(CoDelConfig::default());
        // Short sojourns: enqueue at t, dequeue 1 ms later (< 5 ms target).
        for i in 0..50u64 {
            let t = SimTime::from_millis(i * 2);
            assert!(matches!(
                q.enqueue(t, stamped(i), &mut rng),
                EnqueueResult::Queued
            ));
            let d = q.dequeue(t + SimDuration::from_millis(1));
            assert!(d.dropped.is_empty());
            assert_eq!(d.pkt.unwrap().id, i);
        }
    }

    #[test]
    fn codel_head_drops_under_standing_queue() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = CoDel::new(CoDelConfig::default());
        // Build a standing queue: 200 packets at t=0.
        for i in 0..200u64 {
            let _ = q.enqueue(SimTime::ZERO, stamped(i), &mut rng);
        }
        // Dequeue slowly: sojourn far above target for far longer than the
        // interval -> CoDel must start dropping from the head.
        let mut dropped = 0;
        let mut delivered = 0;
        for step in 0..200u64 {
            let now = SimTime::from_millis(200 + step * 10);
            let d = q.dequeue(now);
            dropped += d.dropped.len();
            if d.pkt.is_some() {
                delivered += 1;
            }
            if q.is_empty() {
                break;
            }
        }
        assert!(dropped > 0, "CoDel must drop under persistent delay");
        assert!(delivered > 0, "but it must not starve the link");
        assert_eq!(dropped + delivered, 200);
    }

    #[test]
    fn codel_recovers_after_queue_drains() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = CoDel::new(CoDelConfig::default());
        for i in 0..100u64 {
            let _ = q.enqueue(SimTime::ZERO, stamped(i), &mut rng);
        }
        let mut t = SimTime::from_millis(200);
        while !q.is_empty() {
            let _ = q.dequeue(t);
            t += SimDuration::from_millis(5);
        }
        // Fresh, fast traffic afterwards is untouched.
        for i in 0..20u64 {
            let now = t + SimDuration::from_millis(i);
            let _ = q.enqueue(now, stamped(1000 + i), &mut rng);
            let d = q.dequeue(now);
            assert!(d.dropped.is_empty(), "no drops after recovery");
            assert!(d.pkt.is_some());
        }
    }

    #[test]
    fn codel_byte_accounting_balances() {
        let mut rng = Xoshiro256StarStar::new(1);
        let mut q = CoDel::new(CoDelConfig::default());
        for i in 0..30u64 {
            let _ = q.enqueue(SimTime::ZERO, stamped(i), &mut rng);
        }
        let mut seen = 0;
        while q.len_packets() > 0 {
            let d = q.dequeue(SimTime::from_secs(1));
            seen += d.dropped.len() + d.pkt.is_some() as usize;
        }
        assert_eq!(seen, 30);
        assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn red_marks_instead_of_dropping_ect_packets() {
        use crate::packet::Ecn;
        let mut rng = Xoshiro256StarStar::new(5);
        let cfg = RedConfig {
            weight: 0.5,
            min_thresh: 2.0,
            max_thresh: 8.0,
            max_p: 0.5,
            max_packets: 64,
            ecn_marking: true,
            mean_pkt_time: SimDuration::from_micros(120),
        };
        let mut q = Red::new(cfg);
        let mut dropped = 0;
        // Build sustained pressure: enqueue 40 ECT packets back to back.
        for i in 0..40 {
            let mut p = pkt(i, 1000);
            p.ecn = Ecn::Ect;
            if let EnqueueResult::Dropped(DropReason::EarlyDrop) =
                q.enqueue(SimTime::ZERO, p, &mut rng)
            {
                dropped += 1;
            }
        }
        let mut marked = 0;
        while let Some(out) = q.dequeue(SimTime::ZERO).pkt {
            if out.ecn == Ecn::Ce {
                marked += 1;
            }
        }
        assert!(marked > 0, "ECT packets must be CE-marked under pressure");
        assert_eq!(dropped, 0, "marking replaces early drops for ECT traffic");
    }
}
