//! Deterministic fault injection: timed mutations of a running network.
//!
//! The paper's coupled controllers exist to *re-balance* traffic when
//! conditions change; a static topology never exercises that machinery.
//! This module declares those changes as data: a [`FaultSchedule`] is a
//! list of `(time, action)` entries — link failures and recoveries,
//! capacity and delay renegotiations, loss bursts, queue reconfiguration —
//! that [`crate::sim::Simulator::install_faults`] turns into ordinary
//! simulator events. Faults therefore flow through the same deterministic
//! `(time, seq)` event queue as every packet: no wall clock, no threads,
//! and a faulted run is exactly as reproducible as an unfaulted one (the
//! trace-hash determinism harness covers both).
//!
//! Semantics of each action are documented on [`FaultAction`]; the short
//! version is that faults mutate the *live* network the way an operator
//! (or a mobility event) would:
//!
//! * **LinkDown** drops everything queued or mid-serialization on the link
//!   (accounted as drops, so packet conservation holds) and blackholes
//!   packets offered while it is down. Packets already propagating still
//!   deliver — they have left the interface.
//! * **LinkUp** restores forwarding; endpoints recover on their own (RTO
//!   probes, subflow revival) exactly as real stacks do.
//! * **SetCapacity / SetDelay / SetLoss** change the link parameters for
//!   *subsequent* transmissions; a packet already being serialized keeps
//!   the timing it started with.
//! * **SetQueue** rebuilds both directions' output queues under the new
//!   configuration, re-offering buffered packets in FIFO order (packets
//!   the new queue refuses are accounted as drops).

use crate::packet::LinkId;
use crate::queue::QueueConfig;
use simbase::{Bandwidth, SimDuration, SimTime};

/// One timed mutation of the running network.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Administratively take a link down (both directions).
    LinkDown(LinkId),
    /// Bring a link back up.
    LinkUp(LinkId),
    /// Change a link's capacity (both directions; applies to transmissions
    /// started after the fault).
    SetCapacity(LinkId, Bandwidth),
    /// Change a link's one-way propagation delay.
    SetDelay(LinkId, SimDuration),
    /// Change a link's independent per-packet corruption-loss probability
    /// (in `[0, 1]`; `1.0` blackholes the link without dropping its queue).
    SetLoss(LinkId, f64),
    /// Replace a link's queue configuration. Both directions' queues are
    /// rebuilt; already-buffered packets are re-offered to the new queue in
    /// FIFO order and any the new queue refuses are accounted as drops.
    SetQueue(LinkId, QueueConfig),
}

impl FaultAction {
    /// The link this action mutates.
    pub fn link(&self) -> LinkId {
        match *self {
            FaultAction::LinkDown(l)
            | FaultAction::LinkUp(l)
            | FaultAction::SetCapacity(l, _)
            | FaultAction::SetDelay(l, _)
            | FaultAction::SetLoss(l, _)
            | FaultAction::SetQueue(l, _) => l,
        }
    }
}

/// A declarative, deterministic schedule of timed [`FaultAction`]s.
///
/// The schedule is plain data (`Clone + PartialEq`), so it can live inside
/// experiment configuration and two identically configured runs install
/// identical event sequences. Entries may be declared in any order; the
/// simulator's event queue orders them by `(time, insertion)` exactly like
/// every other event.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    entries: Vec<(SimTime, FaultAction)>,
}

impl FaultSchedule {
    /// An empty schedule (no faults — the static-topology behavior).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled `(time, action)` entries, in declaration order.
    pub fn entries(&self) -> &[(SimTime, FaultAction)] {
        &self.entries
    }

    /// Append one action.
    pub fn push(&mut self, at: SimTime, action: FaultAction) {
        self.entries.push((at, action));
    }

    /// Builder-style [`push`](Self::push).
    pub fn at(mut self, at: SimTime, action: FaultAction) -> Self {
        self.push(at, action);
        self
    }

    /// A full outage: the link goes down at `from` and comes back at `to`.
    pub fn outage(self, link: LinkId, from: SimTime, to: SimTime) -> Self {
        assert!(from < to, "outage must end after it starts");
        self.at(from, FaultAction::LinkDown(link))
            .at(to, FaultAction::LinkUp(link))
    }

    /// A loss burst: the link's corruption-loss probability is `rate` over
    /// `[from, to)` and returns to zero afterwards.
    pub fn loss_burst(self, link: LinkId, from: SimTime, to: SimTime, rate: f64) -> Self {
        assert!(from < to, "burst must end after it starts");
        self.at(from, FaultAction::SetLoss(link, rate))
            .at(to, FaultAction::SetLoss(link, 0.0))
    }

    /// A capacity renegotiation window: the link runs at `during` between
    /// `from` and `to`, then returns to `after`.
    pub fn capacity_dip(
        self,
        link: LinkId,
        from: SimTime,
        to: SimTime,
        during: Bandwidth,
        after: Bandwidth,
    ) -> Self {
        assert!(from < to, "dip must end after it starts");
        self.at(from, FaultAction::SetCapacity(link, during))
            .at(to, FaultAction::SetCapacity(link, after))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_entries_in_order() {
        let s = FaultSchedule::new()
            .at(SimTime::from_secs(1), FaultAction::LinkDown(LinkId(3)))
            .at(SimTime::from_secs(2), FaultAction::SetLoss(LinkId(0), 0.25));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(
            s.entries()[0],
            (SimTime::from_secs(1), FaultAction::LinkDown(LinkId(3)))
        );
        assert_eq!(s.entries()[1].1.link(), LinkId(0));
    }

    #[test]
    fn outage_expands_to_down_then_up() {
        let s =
            FaultSchedule::new().outage(LinkId(5), SimTime::from_secs(4), SimTime::from_secs(8));
        assert_eq!(
            s.entries(),
            &[
                (SimTime::from_secs(4), FaultAction::LinkDown(LinkId(5))),
                (SimTime::from_secs(8), FaultAction::LinkUp(LinkId(5))),
            ]
        );
    }

    #[test]
    fn loss_burst_restores_zero() {
        let s = FaultSchedule::new().loss_burst(
            LinkId(1),
            SimTime::from_millis(100),
            SimTime::from_millis(300),
            0.4,
        );
        assert_eq!(s.entries()[1].1, FaultAction::SetLoss(LinkId(1), 0.0));
    }

    #[test]
    fn capacity_dip_restores_after_rate() {
        let s = FaultSchedule::new().capacity_dip(
            LinkId(2),
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            Bandwidth::from_mbps(10),
            Bandwidth::from_mbps(100),
        );
        assert_eq!(
            s.entries()[1].1,
            FaultAction::SetCapacity(LinkId(2), Bandwidth::from_mbps(100))
        );
    }

    #[test]
    #[should_panic(expected = "outage must end after it starts")]
    fn empty_outage_rejected() {
        let _ =
            FaultSchedule::new().outage(LinkId(0), SimTime::from_secs(2), SimTime::from_secs(2));
    }

    #[test]
    fn schedules_compare_by_value() {
        let a = FaultSchedule::new().at(SimTime::ZERO, FaultAction::LinkUp(LinkId(0)));
        let b = FaultSchedule::new().at(SimTime::ZERO, FaultAction::LinkUp(LinkId(0)));
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::new());
    }
}
