//! Background traffic generators (plain datagram agents).
//!
//! Real networks are never idle: the paper's testbed competes with kernel
//! chatter, and any deployment of tagged multipath routing competes with
//! cross traffic. These agents inject open-loop load so experiments can ask
//! "does the congestion controller still find the optimum when the
//! bottlenecks are partially occupied?".

use crate::agent::{Agent, Ctx};
use crate::packet::{NodeId, Packet, Protocol, Tag};
use crate::payload::Payload;
use simbase::{Bandwidth, SimDuration, SimRng};

/// Constant-bit-rate datagram source: one `packet_bytes` packet every
/// `interval`, forever (or until the simulator's deadline).
#[derive(Clone)]
pub struct CbrSource {
    dst: NodeId,
    tag: Tag,
    packet_bytes: u32,
    interval: SimDuration,
    flow_hash: u64,
    sent: u64,
}

impl CbrSource {
    /// A CBR source approximating `rate` with `packet_bytes`-sized packets.
    pub fn new(dst: NodeId, tag: Tag, rate: Bandwidth, packet_bytes: u32) -> Self {
        assert!(packet_bytes > 0);
        let wire = packet_bytes as u64 + crate::packet::IP_HEADER_BYTES as u64;
        let interval = rate.tx_time(wire); // time to "earn" one packet at `rate`
        CbrSource {
            dst,
            tag,
            packet_bytes,
            interval,
            flow_hash: 0xC0FFEE,
            sent: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn emit(&mut self, ctx: &mut Ctx<'_>) {
        ctx.send(
            self.dst,
            self.tag,
            Protocol::Raw,
            Payload::empty(),
            self.packet_bytes,
            self.flow_hash,
        );
        self.sent += 1;
        ctx.set_timer_after(self.interval, 0);
    }
}

impl Agent for CbrSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.emit(ctx);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.emit(ctx);
    }
    fn name(&self) -> String {
        "traffic.cbr".to_string()
    }
    fn clone_boxed(&self) -> Box<dyn Agent> {
        Box::new(self.clone())
    }
}

/// Exponential on/off datagram source: bursts at `peak_rate` for
/// exponentially distributed on-periods, silent for exponentially
/// distributed off-periods — the classic bursty cross-traffic model.
#[derive(Clone)]
pub struct OnOffSource {
    dst: NodeId,
    tag: Tag,
    packet_bytes: u32,
    interval: SimDuration,
    mean_on: SimDuration,
    mean_off: SimDuration,
    /// Currently in an on-period?
    on: bool,
    /// When the current period ends.
    period_ends: simbase::SimTime,
    sent: u64,
}

/// Timer tokens.
const TOKEN_SEND: u64 = 0;
const TOKEN_PERIOD: u64 = 1;

impl OnOffSource {
    /// Create a source bursting at `peak_rate` with the given mean on/off
    /// durations.
    pub fn new(
        dst: NodeId,
        tag: Tag,
        peak_rate: Bandwidth,
        packet_bytes: u32,
        mean_on: SimDuration,
        mean_off: SimDuration,
    ) -> Self {
        assert!(packet_bytes > 0);
        let wire = packet_bytes as u64 + crate::packet::IP_HEADER_BYTES as u64;
        OnOffSource {
            dst,
            tag,
            packet_bytes,
            interval: peak_rate.tx_time(wire),
            mean_on,
            mean_off,
            on: false,
            period_ends: simbase::SimTime::ZERO,
            sent: 0,
        }
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    fn schedule_period(&mut self, ctx: &mut Ctx<'_>) {
        let mean = if self.on { self.mean_on } else { self.mean_off };
        let dur = SimDuration::from_nanos(
            (ctx.rng.next_exponential(mean.as_nanos() as f64)).max(1.0) as u64,
        );
        self.period_ends = ctx.now() + dur;
        ctx.set_timer_at(self.period_ends, TOKEN_PERIOD);
        if self.on {
            ctx.set_timer_after(SimDuration::ZERO.max(self.interval), TOKEN_SEND);
        }
    }
}

impl Agent for OnOffSource {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.on = true;
        self.schedule_period(ctx);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        match token {
            TOKEN_PERIOD => {
                self.on = !self.on;
                self.schedule_period(ctx);
            }
            TOKEN_SEND if self.on && ctx.now() < self.period_ends => {
                ctx.send(
                    self.dst,
                    self.tag,
                    Protocol::Raw,
                    Payload::empty(),
                    self.packet_bytes,
                    0xB0B0,
                );
                self.sent += 1;
                ctx.set_timer_after(self.interval, TOKEN_SEND);
            }
            _ => {}
        }
    }
    fn name(&self) -> String {
        "traffic.onoff".to_string()
    }
    fn clone_boxed(&self) -> Box<dyn Agent> {
        Box::new(self.clone())
    }
}

/// A sink that counts datagrams (attach at the destination host).
#[derive(Clone, Default)]
pub struct DatagramSink {
    /// Packets received.
    pub received: u64,
    /// Wire bytes received.
    pub bytes: u64,
}

impl Agent for DatagramSink {
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, pkt: Packet) {
        self.received += 1;
        self.bytes += pkt.wire_size() as u64;
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
    fn name(&self) -> String {
        "traffic.sink".to_string()
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
    fn clone_boxed(&self) -> Box<dyn Agent> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QueueConfig, RoutingTables, Simulator, Topology};
    use simbase::SimTime;

    fn net(cap_mbps: u64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a");
        let b = t.add_node("b");
        t.add_link(
            a,
            b,
            Bandwidth::from_mbps(cap_mbps),
            SimDuration::from_millis(1),
            QueueConfig::DropTailPackets(64),
        );
        (t, a, b)
    }

    #[test]
    fn cbr_hits_its_configured_rate() {
        let (topo, a, b) = net(100);
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(CbrSource::new(b, Tag::NONE, Bandwidth::from_mbps(10), 1000)),
            SimTime::ZERO,
        );
        let sink = sim.add_agent(b, Box::new(DatagramSink::default()), SimTime::ZERO);
        sim.run_until(SimTime::from_secs(2));
        let sink = sim
            .agent(sink)
            .as_any()
            .unwrap()
            .downcast_ref::<DatagramSink>()
            .unwrap();
        let mbps = sink.bytes as f64 * 8.0 / 2.0 / 1e6;
        assert!((mbps - 10.0).abs() < 0.5, "CBR rate {mbps:.2}");
        assert_eq!(sim.stats().packets_dropped, 0);
    }

    #[test]
    fn cbr_overload_saturates_and_drops() {
        let (topo, a, b) = net(5);
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 1);
        sim.add_agent(
            a,
            Box::new(CbrSource::new(b, Tag::NONE, Bandwidth::from_mbps(10), 1000)),
            SimTime::ZERO,
        );
        let sink = sim.add_agent(b, Box::new(DatagramSink::default()), SimTime::ZERO);
        sim.run_until(SimTime::from_secs(2));
        let sink = sim
            .agent(sink)
            .as_any()
            .unwrap()
            .downcast_ref::<DatagramSink>()
            .unwrap();
        let mbps = sink.bytes as f64 * 8.0 / 2.0 / 1e6;
        assert!(mbps <= 5.05 && mbps > 4.5, "capped at capacity: {mbps:.2}");
        assert!(sim.stats().packets_dropped > 0);
    }

    #[test]
    fn onoff_duty_cycle_scales_the_mean_rate() {
        let (topo, a, b) = net(100);
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 42);
        // 20 Mbps peak, 50% duty cycle -> ~10 Mbps mean.
        sim.add_agent(
            a,
            Box::new(OnOffSource::new(
                b,
                Tag::NONE,
                Bandwidth::from_mbps(20),
                1000,
                SimDuration::from_millis(50),
                SimDuration::from_millis(50),
            )),
            SimTime::ZERO,
        );
        let sink = sim.add_agent(b, Box::new(DatagramSink::default()), SimTime::ZERO);
        sim.run_until(SimTime::from_secs(10));
        let sink = sim
            .agent(sink)
            .as_any()
            .unwrap()
            .downcast_ref::<DatagramSink>()
            .unwrap();
        let mbps = sink.bytes as f64 * 8.0 / 10.0 / 1e6;
        assert!(mbps > 5.0 && mbps < 15.0, "duty-cycled rate {mbps:.2}");
    }

    #[test]
    fn onoff_is_bursty_not_smooth() {
        let (topo, a, b) = net(100);
        let mut rt = RoutingTables::new(&topo);
        rt.install_all_default_routes(&topo);
        let mut sim = Simulator::new(topo, rt, 7);
        sim.set_capture(crate::CaptureConfig::receiver_side(b));
        sim.add_agent(
            a,
            Box::new(OnOffSource::new(
                b,
                Tag::NONE,
                Bandwidth::from_mbps(50),
                1000,
                SimDuration::from_millis(20),
                SimDuration::from_millis(80),
            )),
            SimTime::ZERO,
        );
        sim.add_agent(b, Box::new(DatagramSink::default()), SimTime::ZERO);
        sim.run_until(SimTime::from_secs(5));
        // Bin arrivals at 10 ms; a bursty source must show empty AND busy bins.
        let mut bins = vec![0u32; 500];
        for c in sim.captures() {
            if c.kind == crate::CaptureKind::Delivered {
                bins[(c.time.as_nanos() / 10_000_000) as usize % 500] += 1;
            }
        }
        let empty = bins.iter().filter(|&&b| b == 0).count();
        let busy = bins.iter().filter(|&&b| b > 20).count();
        assert!(empty > 50, "expected silent bins, got {empty}");
        assert!(busy > 10, "expected burst bins, got {busy}");
    }
}
