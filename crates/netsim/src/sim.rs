//! The discrete-event simulator.
//!
//! [`Simulator`] owns the topology, routing tables, per-link runtime state
//! (transmitter + queue per direction), registered agents, statistics, and
//! the event queue. One event loop iteration pops the earliest event and:
//!
//! * `Arrive` — a packet finished its propagation delay; deliver it to the
//!   local agent (if it is the destination) or forward it.
//! * `TxDone` — a transmitter finished serializing a packet; start the
//!   propagation leg and pull the next packet from the queue.
//! * `Timer` / `StartAgent` — dispatch to the owning agent.
//!
//! The link model is store-and-forward with full-duplex directions: each
//! direction has an independent transmitter and drop-tail/RED queue.
//! Serialization time is `wire_size / capacity` (exact integer arithmetic),
//! after which the packet spends the link's propagation delay in flight.
//!
//! # Schedule-independent ordering
//!
//! Events at equal times are ordered by a *canonical key* rather than push
//! order (see [`order`]), and every random draw comes from a per-entity
//! stream (one per link direction, one per agent) rather than a global
//! generator. Both choices make the execution a pure function of the event
//! set — independent of the order events happened to be scheduled in — which
//! is what lets [`Simulator::run_parallel`] shard a run across regions and
//! still produce a byte-identical trace.

use crate::agent::{Agent, AgentId, Ctx, Effect};
use crate::capture::{CaptureConfig, CaptureKind, CaptureRecord};
use crate::faults::{FaultAction, FaultSchedule};
use crate::packet::{Dir, LinkId, NodeId, Packet, PacketMeta};
use crate::queue::{EnqueueResult, Queue};
use crate::routing::RoutingTables;
use crate::stats::{LinkDirStats, SimStats};
use crate::topology::Topology;
use simbase::{
    EventLog, EventQueue, LogLevel, SimDuration, SimRng, SimTime, SplitMix64, Xoshiro256StarStar,
};

mod parallel;

/// Canonical event-ordering keys.
///
/// Two events scheduled for the same instant pop in key order, not push
/// order. The key packs `[class:3][entity:25][local:36]`:
///
/// * `class` — fault (0), agent start (1), TxDone (2), Arrive (3),
///   timer (4); ties between unrelated event kinds resolve by kind.
/// * `entity` — the link direction (`link * 2 + dir`) or agent the event
///   belongs to.
/// * `local` — a per-entity discriminator: the direction's transmission
///   epoch (TxDone), a per-direction arrival counter (Arrive), the agent's
///   timer token (Timer), or a fault-schedule install index (Fault).
///
/// Every *live* key is unique at its timestamp: arrival counters and fault
/// indices never repeat, an agent re-arming a timer token cancels the old
/// event first, and a direction serializes at most one packet at a time
/// (serialization takes ≥ 1 ns, so equal-time TxDones on one direction
/// cannot both be live).
pub(crate) mod order {
    /// Network mutations apply before anything else at the same instant.
    pub const CLASS_FAULT: u64 = 0;
    /// Agent start hooks.
    pub const CLASS_START: u64 = 1;
    /// Serialization completions.
    pub const CLASS_TX_DONE: u64 = 2;
    /// Propagation completions.
    pub const CLASS_ARRIVE: u64 = 3;
    /// Agent timers fire last at an instant.
    pub const CLASS_TIMER: u64 = 4;

    const ENTITY_BITS: u32 = 25;
    const LOCAL_BITS: u32 = 36;

    /// Pack a canonical key. Panics if a field overflows its budget —
    /// silently wrapping would corrupt the event order.
    pub fn pack(class: u64, entity: u64, local: u64) -> u64 {
        assert!(entity < 1 << ENTITY_BITS, "canonical-key entity overflow");
        assert!(local < 1 << LOCAL_BITS, "canonical-key local overflow");
        (class << (ENTITY_BITS + LOCAL_BITS)) | (entity << LOCAL_BITS) | local
    }

    /// The entity index of one link direction.
    pub fn dir_entity(link: crate::packet::LinkId, dir: crate::packet::Dir) -> u64 {
        (link.0 as u64) * 2 + dir.index() as u64
    }
}

/// Simulator events.
#[derive(Debug, Clone)]
enum Event {
    /// Fire an agent's start hook.
    StartAgent(AgentId),
    /// Deliver a one-shot timer to an agent.
    Timer { agent: AgentId, token: u64 },
    /// A transmitter finished serializing its current packet. The epoch
    /// pins the event to the transmission that scheduled it: aborting a
    /// serialization (link failure) bumps the direction's epoch, so a
    /// stale TxDone cannot complete a *different* packet started later.
    TxDone { link: LinkId, dir: Dir, epoch: u64 },
    /// A packet finished propagating and arrives at the far end. The
    /// packet itself sits in the simulator's wire pool — a full [`Packet`]
    /// embeds its inline payload (~112 bytes), and keeping queue entries
    /// small makes every event-queue move a fraction of the cost.
    Arrive {
        link: LinkId,
        dir: Dir,
        wire_slot: u32,
    },
    /// Apply a scheduled network mutation (see [`crate::faults`]). Boxed:
    /// faults are rare, and the variant would otherwise dominate the
    /// event's size (it embeds a full queue configuration).
    Fault(Box<FaultAction>),
}

/// Runtime state for one direction of a link.
#[derive(Clone)]
struct DirState {
    /// The packet currently being serialized plus its serialization time
    /// (fixed when the transmission started: a capacity fault mid-flight
    /// must not retroactively change this packet's accounting).
    transmitting: Option<(Packet, SimDuration)>,
    /// Incremented whenever a serialization is aborted; pending `TxDone`
    /// events from before the abort carry the old epoch and are ignored.
    epoch: u64,
    /// Output queue behind the transmitter.
    queue: Box<dyn Queue>,
}

impl DirState {
    fn is_busy(&self) -> bool {
        self.transmitting.is_some()
    }
}

/// Runtime state for one duplex link: `dirs[Dir::index()]`.
#[derive(Clone)]
struct LinkRuntime {
    dirs: [DirState; 2],
    /// Administrative state; packets offered to a down link are dropped.
    up: bool,
}

/// RNG stream labels for [`SplitMix64::derive`]: one independent stream
/// per agent and per link direction, so a random draw depends only on the
/// entity making it — never on what the rest of the network did first.
const STREAM_AGENT: u64 = 1 << 32;
const STREAM_DIR: u64 = 2 << 32;

/// Per-agent packet ids live in the upper bits: agent `a`'s packets are
/// `(a << PACKET_ID_SHIFT) + n`. 2^40 packets per agent is unreachable in
/// practice, and the namespacing keeps ids identical however a run is
/// partitioned.
const PACKET_ID_SHIFT: u32 = 40;

/// The packet-level network simulator.
pub struct Simulator {
    topo: Topology,
    routing: RoutingTables,
    links: Vec<LinkRuntime>,
    agents: Vec<Option<Box<dyn Agent>>>,
    agent_node: Vec<NodeId>,
    node_agent: Vec<Option<AgentId>>,
    events: EventQueue<Event>,
    now: SimTime,
    /// The run's root seed; every per-entity stream derives from it.
    seed: u64,
    /// Per-agent RNG streams (handed to `Ctx::rng`).
    agent_rngs: Vec<Xoshiro256StarStar>,
    /// Per-link-direction RNG streams (queue AQM draws, corruption loss,
    /// forwarding jitter), indexed like `links`.
    dir_rngs: Vec<[Xoshiro256StarStar; 2]>,
    /// Per-agent packet-id counters (see `PACKET_ID_SHIFT`).
    agent_packet_seq: Vec<u64>,
    /// Per-link-direction count of arrivals scheduled — the `local` part of
    /// each `Arrive` event's canonical key.
    arrive_seq: Vec<[u64; 2]>,
    /// Faults installed so far — the `local` part of fault keys.
    fault_seq: u64,
    /// Simulation-wide event log (agents write through `Ctx`).
    pub log: EventLog,
    capture_cfg: CaptureConfig,
    captures: Vec<CaptureRecord>,
    /// Per-record provenance stamp `(event key, intra-event index)`,
    /// parallel to `captures`: the canonical position of the record in the
    /// run, used to merge region capture streams into serial order.
    capture_ord: Vec<(u64, u32)>,
    /// Canonical key of the event currently being executed.
    cur_key: u64,
    /// Capture records emitted so far by the current event.
    cur_sub: u32,
    stats: SimStats,
    link_stats: Vec<[LinkDirStats; 2]>,
    /// Packets currently inside the network (queued, serializing, flying).
    /// Signed: a region of a partitioned run can deliver more packets than
    /// it sourced; only the sum over regions must be non-negative.
    in_flight: i64,
    /// Pending timers per agent: `(agent token, queue cancellation token)`
    /// pairs, linear-scanned (an agent arms a handful of timers at most).
    /// Arming an already-armed `(agent, token)` cancels the old deadline
    /// (replacement semantics: a stale deadline can never fire).
    timer_keys: Vec<Vec<(u64, u64)>>,
    /// Packets in propagation, indexed by `Event::Arrive::wire_slot`.
    /// Slots are recycled through `wire_free`, so steady-state forwarding
    /// allocates nothing.
    wire_pool: Vec<Option<Packet>>,
    /// Vacant `wire_pool` indices.
    wire_free: Vec<u32>,
    /// Recycled effect buffers (one per live dispatch depth); dispatching
    /// an agent in steady state allocates nothing.
    effect_bufs: Vec<Vec<Effect>>,
    /// Maximum uniform per-hop forwarding jitter added to each packet's
    /// propagation leg (models kernel/switch processing noise; zero by
    /// default so timing tests stay exact).
    forward_jitter: SimDuration,
    /// Adjustments folded in by a parallel run's merge step: region queues
    /// did the real scheduling, and duplicated fault copies must not be
    /// double-counted. Zero on the serial path.
    extra_scheduled: i64,
    extra_cancelled: u64,
    /// This simulator's region id in a partitioned run (0 when serial).
    region: u32,
    /// Region of every node when running as one region of a partitioned
    /// simulation; `None` on the (default) serial path.
    node_region: Option<Vec<u32>>,
    /// Cross-region arrivals produced this window, one buffer per peer
    /// region (empty and unused when serial).
    outbox: Vec<Vec<parallel::RegionMsg>>,
}

impl Simulator {
    /// Build a simulator over a topology with a deterministic seed.
    pub fn new(topo: Topology, routing: RoutingTables, seed: u64) -> Self {
        let links = topo
            .link_ids()
            .map(|l| {
                let spec = topo.link(l);
                LinkRuntime {
                    dirs: [
                        DirState {
                            transmitting: None,
                            epoch: 0,
                            queue: spec.queue.build(),
                        },
                        DirState {
                            transmitting: None,
                            epoch: 0,
                            queue: spec.queue.build(),
                        },
                    ],
                    up: true,
                }
            })
            .collect();
        let link_stats = topo
            .link_ids()
            .map(|_| [LinkDirStats::default(); 2])
            .collect();
        let node_agent = vec![None; topo.node_count()];
        let dir_rngs = topo
            .link_ids()
            .map(|l| {
                [Dir::AtoB, Dir::BtoA].map(|d| {
                    Xoshiro256StarStar::new(SplitMix64::derive(
                        seed,
                        STREAM_DIR | order::dir_entity(l, d),
                    ))
                })
            })
            .collect();
        let arrive_seq = topo.link_ids().map(|_| [0u64; 2]).collect();
        Simulator {
            topo,
            routing,
            links,
            agents: Vec::new(),
            agent_node: Vec::new(),
            node_agent,
            events: EventQueue::new(),
            now: SimTime::ZERO,
            seed,
            agent_rngs: Vec::new(),
            dir_rngs,
            agent_packet_seq: Vec::new(),
            arrive_seq,
            fault_seq: 0,
            log: EventLog::new(LogLevel::Warn),
            capture_cfg: CaptureConfig::off(),
            captures: Vec::new(),
            capture_ord: Vec::new(),
            cur_key: 0,
            cur_sub: 0,
            stats: SimStats::default(),
            link_stats: Vec::new(),
            in_flight: 0,
            timer_keys: Vec::new(),
            wire_pool: Vec::new(),
            wire_free: Vec::new(),
            effect_bufs: Vec::new(),
            forward_jitter: SimDuration::ZERO,
            extra_scheduled: 0,
            extra_cancelled: 0,
            region: 0,
            node_region: None,
            outbox: Vec::new(),
        }
        .with_link_stats(link_stats)
    }

    fn with_link_stats(mut self, ls: Vec<[LinkDirStats; 2]>) -> Self {
        self.link_stats = ls;
        self
    }

    /// Set the capture configuration (before or during a run).
    pub fn set_capture(&mut self, cfg: CaptureConfig) {
        self.capture_cfg = cfg;
    }

    /// Add up to `jitter` of uniform random delay to every packet's
    /// propagation leg. Models the OS-scheduling noise of a software
    /// testbed (the paper's Mininet); breaks drop-phase synchronisation
    /// between flows and makes distinct seeds produce distinct runs.
    pub fn set_forward_jitter(&mut self, jitter: SimDuration) {
        self.forward_jitter = jitter;
    }

    /// Set the log verbosity.
    pub fn set_log_level(&mut self, level: LogLevel) {
        self.log = EventLog::new(level);
    }

    /// Attach an agent to `node`, starting at `start`. One agent per node.
    pub fn add_agent(&mut self, node: NodeId, agent: Box<dyn Agent>, start: SimTime) -> AgentId {
        assert!((node.0 as usize) < self.topo.node_count(), "unknown node");
        assert!(
            self.node_agent[node.0 as usize].is_none(),
            "node {node:?} already has an agent"
        );
        let id = AgentId(self.agents.len() as u32);
        self.agents.push(Some(agent));
        self.agent_node.push(node);
        self.timer_keys.push(Vec::new());
        self.push_agent_tables(id);
        self.node_agent[node.0 as usize] = Some(id);
        self.events.push_keyed(
            start,
            order::pack(order::CLASS_START, id.0 as u64, 0),
            Event::StartAgent(id),
        );
        id
    }

    /// Derive agent `id`'s RNG stream and packet-id namespace (shared by
    /// `add_agent` and region construction, which must agree exactly).
    fn push_agent_tables(&mut self, id: AgentId) {
        self.agent_rngs
            .push(Xoshiro256StarStar::new(SplitMix64::derive(
                self.seed,
                STREAM_AGENT | id.0 as u64,
            )));
        self.agent_packet_seq.push((id.0 as u64) << PACKET_ID_SHIFT);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Routing tables (immutable during the run).
    pub fn routing(&self) -> &RoutingTables {
        &self.routing
    }

    /// Simulation-wide counters.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Counters for one direction of a link.
    pub fn link_stats(&self, link: LinkId, dir: Dir) -> &LinkDirStats {
        &self.link_stats[link.0 as usize][dir.index()] // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
    }

    /// Mutable counters for one direction of a link — the single indexing
    /// site for all per-link stat updates (`link` comes from the topology,
    /// so the bound holds by construction).
    fn dir_stats(&mut self, link: LinkId, dir: Dir) -> &mut LinkDirStats {
        &mut self.link_stats[link.0 as usize][dir.index()] // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
    }

    /// Park a propagating packet in the wire pool, returning its slot.
    fn wire_put(&mut self, pkt: Packet) -> u32 {
        if let Some(i) = self.wire_free.pop() {
            if let Some(slot) = self.wire_pool.get_mut(i as usize) {
                *slot = Some(pkt);
                return i;
            }
        }
        let i = wire_slot_index(self.wire_pool.len());
        self.wire_pool.push(Some(pkt));
        i
    }

    /// Retrieve a propagating packet by slot, vacating it for reuse.
    fn wire_take(&mut self, i: u32) -> Packet {
        let pkt = self
            .wire_pool
            .get_mut(i as usize)
            .and_then(Option::take)
            // simlint: allow(unwrap, reason = "an Arrive event's slot is filled at push and vacated exactly once, here")
            .expect("arrival references a vacant wire slot");
        self.wire_free.push(i);
        pkt
    }

    /// Capture records collected so far.
    pub fn captures(&self) -> &[CaptureRecord] {
        &self.captures
    }

    /// Take ownership of the capture records (clears the buffer).
    pub fn take_captures(&mut self) -> Vec<CaptureRecord> {
        self.capture_ord.clear();
        std::mem::take(&mut self.captures)
    }

    /// Packets currently inside the network.
    pub fn packets_in_flight(&self) -> u64 {
        // simlint: allow(unwrap, reason = "a negative global in-flight count is a conservation bug; fail loudly")
        u64::try_from(self.in_flight).expect("negative in-flight packet count")
    }

    /// Events scheduled over the run and not cancelled (the live share).
    pub fn events_scheduled(&self) -> u64 {
        let n = self.events.total_pushed() as i64 + self.extra_scheduled;
        debug_assert!(n >= 0, "negative scheduled-event count after merge");
        n.max(0) as u64
    }

    /// Events cancelled before firing — the dead-event count the old lazy
    /// timer guards would have popped and ignored.
    pub fn events_cancelled(&self) -> u64 {
        self.events.total_cancelled() + self.extra_cancelled
    }

    /// Swap the event queue for the original binary-heap reference backend
    /// (differential testing / benchmarking). Must be called before any
    /// agents or faults are scheduled.
    #[cfg(feature = "ref-heap")]
    pub fn use_reference_heap(&mut self) {
        assert!(
            self.events.is_empty(),
            "backend switch after events were scheduled"
        );
        self.events = EventQueue::new_reference_heap();
    }

    /// Borrow an agent back out of the simulator (after a run) to inspect
    /// endpoint state. Panics if the id is stale.
    pub fn agent(&self, id: AgentId) -> &dyn Agent {
        self.agents[id.0 as usize]
            .as_deref()
            .expect("agent is being dispatched") // simlint: allow(unwrap, reason = "documented API contract: stale AgentId is a caller bug")
    }

    /// Capture the complete deterministic state of this simulator as a
    /// [`SimSnapshot`] that [`Simulator::restore`] can branch from.
    ///
    /// The snapshot is a deep copy: the event queue (pending entries,
    /// cancellation-token table, and lifetime push/cancel counters), every
    /// agent (via [`Agent::clone_boxed`]), per-entity RNG streams, link
    /// transmitters and queues, the wire pool, capture records, and all
    /// statistics. Because the execution is a pure function of that state
    /// (see the module docs on schedule-independent ordering), a restored
    /// simulator replays the identical event sequence — trace hashes of a
    /// branched continuation match a cold run byte-for-byte.
    ///
    /// Only the serial path can checkpoint: panics if this simulator is a
    /// region of a partitioned run (checkpoint before `run_parallel`, or
    /// use the serial engine for the prefix).
    pub fn checkpoint(&self) -> SimSnapshot {
        assert!(
            self.node_region.is_none() && self.outbox.iter().all(Vec::is_empty),
            "checkpoint of a partitioned region is not supported"
        );
        SimSnapshot {
            version: SNAPSHOT_VERSION,
            sim: self.deep_clone(),
        }
    }

    /// Reconstruct an independent simulator from a snapshot. The snapshot
    /// is reusable: each call yields a fresh branch that evolves on its
    /// own (schedule different faults on each and compare).
    pub fn restore(snapshot: &SimSnapshot) -> Simulator {
        assert_eq!(
            snapshot.version, SNAPSHOT_VERSION,
            "snapshot version mismatch: cannot restore v{} with a v{SNAPSHOT_VERSION} engine",
            snapshot.version
        );
        snapshot.sim.deep_clone()
    }

    /// The deep copy backing [`Simulator::checkpoint`]/[`Simulator::restore`].
    fn deep_clone(&self) -> Simulator {
        let agents = self
            .agents
            .iter()
            .map(|slot| {
                // Between events every slot is occupied; a vacant slot means
                // we are inside a dispatch, where checkpointing is unsound.
                // simlint: allow(unwrap, reason = "checkpoint mid-dispatch would lose the dispatched agent; fail loudly")
                let agent = slot.as_deref().expect("checkpoint during agent dispatch");
                Some(agent.clone_boxed())
            })
            .collect();
        Simulator {
            topo: self.topo.clone(),
            routing: self.routing.clone(),
            links: self.links.clone(),
            agents,
            agent_node: self.agent_node.clone(),
            node_agent: self.node_agent.clone(),
            events: self.events.clone(),
            now: self.now,
            seed: self.seed,
            agent_rngs: self.agent_rngs.clone(),
            dir_rngs: self.dir_rngs.clone(),
            agent_packet_seq: self.agent_packet_seq.clone(),
            arrive_seq: self.arrive_seq.clone(),
            fault_seq: self.fault_seq,
            log: self.log.clone(),
            capture_cfg: self.capture_cfg.clone(),
            captures: self.captures.clone(),
            capture_ord: self.capture_ord.clone(),
            cur_key: self.cur_key,
            cur_sub: self.cur_sub,
            stats: self.stats,
            link_stats: self.link_stats.clone(),
            in_flight: self.in_flight,
            timer_keys: self.timer_keys.clone(),
            wire_pool: self.wire_pool.clone(),
            wire_free: self.wire_free.clone(),
            // Scratch buffers are always empty between events.
            effect_bufs: Vec::new(),
            forward_jitter: self.forward_jitter,
            extra_scheduled: self.extra_scheduled,
            extra_cancelled: self.extra_cancelled,
            region: self.region,
            node_region: None,
            outbox: Vec::new(),
        }
    }

    /// Schedule an administrative link failure (both directions). Packets
    /// queued or in serialization are lost; packets already propagating
    /// deliver (they have left the interface).
    pub fn schedule_link_down(&mut self, link: LinkId, at: SimTime) {
        self.schedule_fault(at, FaultAction::LinkDown(link));
    }

    /// Schedule a link recovery.
    pub fn schedule_link_up(&mut self, link: LinkId, at: SimTime) {
        self.schedule_fault(at, FaultAction::LinkUp(link));
    }

    /// Schedule one fault action. Validated eagerly so a bad schedule fails
    /// at install time, not minutes into a run.
    pub fn schedule_fault(&mut self, at: SimTime, action: FaultAction) {
        let link = action.link();
        assert!((link.0 as usize) < self.links.len(), "unknown link");
        match &action {
            FaultAction::SetCapacity(_, cap) => {
                assert!(cap.as_bps() > 0, "zero-capacity fault");
            }
            FaultAction::SetLoss(_, rate) => {
                assert!((0.0..=1.0).contains(rate), "loss rate in [0, 1]");
            }
            _ => {}
        }
        let key = order::pack(order::CLASS_FAULT, 0, self.fault_seq);
        self.fault_seq += 1;
        self.events
            .push_keyed(at, key, Event::Fault(Box::new(action)));
    }

    /// Install every entry of a [`FaultSchedule`] as simulator events.
    /// Entries interleave with packet events under the canonical
    /// `(time, key)` order of the event queue — faults apply before any
    /// packet event at the same instant, in install order — so a faulted
    /// run is a pure function of (topology, agents, schedule, seed).
    pub fn install_faults(&mut self, schedule: &FaultSchedule) {
        for (at, action) in schedule.entries() {
            self.schedule_fault(*at, action.clone());
        }
    }

    /// Is the link administratively up?
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link.0 as usize].up
    }

    /// Run until the event queue is exhausted or `deadline` is reached.
    /// Events exactly at the deadline are processed; the clock never
    /// advances past it.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.events.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        self.check_conservation();
    }

    /// Run until no events remain (terminating workloads only).
    pub fn run_to_completion(&mut self) {
        while self.step() {}
        self.check_conservation();
    }

    /// Packet conservation (`check` feature): everything sent must be
    /// delivered, dropped, unroutable, or still sitting in a queue / on a
    /// wire. A mismatch means the forwarding plane lost or duplicated a
    /// packet without accounting for it.
    #[cfg(feature = "check")]
    fn check_conservation(&self) {
        assert!(
            self.in_flight >= 0 && self.stats.conserved(self.in_flight as u64),
            "packet conservation violated: sent={} delivered={} dropped={} unroutable={} in_flight={}",
            self.stats.packets_sent,
            self.stats.packets_delivered,
            self.stats.packets_dropped,
            self.stats.packets_unroutable,
            self.in_flight,
        );
    }

    #[cfg(not(feature = "check"))]
    fn check_conservation(&self) {}

    /// Process a single event. Returns false if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.events.pop() else {
            return false;
        };
        // Event-time monotonicity: a hard assert under the `check` feature
        // (a backwards clock silently corrupts every downstream series),
        // a debug assert otherwise.
        #[cfg(feature = "check")]
        assert!(
            ev.time >= self.now,
            "time went backwards: event at {} < now {}",
            ev.time,
            self.now
        );
        #[cfg(not(feature = "check"))]
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        // The popped seq is the event's canonical key; stamp any capture
        // records this event emits with it.
        self.cur_key = ev.seq;
        self.cur_sub = 0;
        self.stats.events += 1;
        match ev.event {
            Event::StartAgent(id) => self.dispatch(id, AgentCall::Start),
            Event::Timer { agent, token } => {
                // Replacement semantics guarantee at most one live event per
                // (agent, token); popping it retires the table entry.
                if let Some(keys) = self.timer_keys.get_mut(agent.0 as usize) {
                    if let Some(i) = keys.iter().position(|&(t, _)| t == token) {
                        keys.swap_remove(i);
                    }
                }
                self.stats.timers_fired += 1;
                self.dispatch(agent, AgentCall::Timer(token));
            }
            Event::TxDone { link, dir, epoch } => self.on_tx_done(link, dir, epoch),
            Event::Arrive {
                link,
                dir,
                wire_slot,
            } => {
                let pkt = self.wire_take(wire_slot);
                let spec = self.topo.link(link);
                let node = match dir {
                    Dir::AtoB => spec.b,
                    Dir::BtoA => spec.a,
                };
                self.handle_packet_at(node, pkt);
            }
            Event::Fault(action) => self.apply_fault(*action),
        }
        true
    }

    /// Apply one fault action to the live network (see [`crate::faults`]
    /// for the semantics of each variant).
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::LinkDown(link) => self.on_link_down(link),
            FaultAction::LinkUp(link) => {
                self.links[link.0 as usize].up = true;
                self.log
                    .log(self.now, LogLevel::Info, "sim", format!("{link:?} up"));
            }
            FaultAction::SetCapacity(link, cap) => {
                self.topo.set_link_capacity(link, cap);
                self.log.log(
                    self.now,
                    LogLevel::Info,
                    "sim",
                    format!("{link:?} capacity -> {} bps", cap.as_bps()),
                );
            }
            FaultAction::SetDelay(link, delay) => {
                self.topo.set_link_delay(link, delay);
                self.log.log(
                    self.now,
                    LogLevel::Info,
                    "sim",
                    format!("{link:?} delay -> {delay}"),
                );
            }
            FaultAction::SetLoss(link, rate) => {
                self.topo.set_link_loss(link, rate);
                self.log.log(
                    self.now,
                    LogLevel::Info,
                    "sim",
                    format!("{link:?} loss -> {rate}"),
                );
            }
            FaultAction::SetQueue(link, cfg) => {
                self.topo.set_link_queue(link, cfg);
                self.log.log(
                    self.now,
                    LogLevel::Info,
                    "sim",
                    format!("{link:?} queue reconfigured"),
                );
                // Rebuild both directions' queues: re-offer the buffered
                // packets to the new queue in FIFO order; packets the new
                // (possibly smaller) queue refuses are accounted as drops,
                // as are head-drops surfaced while draining the old AQM.
                for dir in [Dir::AtoB, Dir::BtoA] {
                    let state = &mut self.links[link.0 as usize].dirs[dir.index()];
                    let mut old = std::mem::replace(&mut state.queue, cfg.build());
                    let mut lost_bytes: Vec<u32> = Vec::new();
                    loop {
                        let deq = old.dequeue(self.now);
                        let had_any = deq.pkt.is_some() || !deq.dropped.is_empty();
                        lost_bytes.extend(deq.dropped.iter().map(|p| p.wire_size()));
                        if let Some(pkt) = deq.pkt {
                            let size = pkt.wire_size();
                            let state = &mut self.links[link.0 as usize].dirs[dir.index()];
                            let rng = &mut self.dir_rngs[link.0 as usize][dir.index()];
                            if let EnqueueResult::Dropped(_) =
                                state.queue.enqueue(self.now, pkt, rng)
                            {
                                lost_bytes.push(size);
                            }
                        }
                        if !had_any {
                            break;
                        }
                    }
                    for size in lost_bytes {
                        self.stats.packets_dropped += 1;
                        self.in_flight -= 1;
                        self.dir_stats(link, dir).on_drop(size);
                    }
                }
            }
        }
    }

    fn on_link_down(&mut self, link: LinkId) {
        self.log
            .log(self.now, LogLevel::Info, "sim", format!("{link:?} down"));
        let mut lost_sizes: [Vec<u32>; 2] = [Vec::new(), Vec::new()];
        {
            let rt = &mut self.links[link.0 as usize];
            rt.up = false;
            for (state, sizes) in rt.dirs.iter_mut().zip(lost_sizes.iter_mut()) {
                // The packet being serialized is lost on the wire. Bump the
                // epoch so the pending TxDone for the aborted serialization
                // is recognized as stale even if a fresh transmission starts
                // on this direction before it fires.
                if let Some((pkt, _tx_time)) = state.transmitting.take() {
                    state.epoch += 1;
                    sizes.push(pkt.wire_size());
                }
                // Buffered packets are lost with the interface.
                loop {
                    let deq = state.queue.dequeue(self.now);
                    let mut lost = deq.dropped;
                    if let Some(p) = deq.pkt {
                        lost.push(p);
                    }
                    if lost.is_empty() {
                        break;
                    }
                    sizes.extend(lost.iter().map(Packet::wire_size));
                }
            }
        }
        for (dir, sizes) in [Dir::AtoB, Dir::BtoA].into_iter().zip(lost_sizes) {
            for size in sizes {
                self.stats.packets_dropped += 1;
                self.in_flight -= 1;
                self.dir_stats(link, dir).on_drop(size);
            }
        }
        // A stale TxDone for the dropped transmission may still fire; it
        // carries the pre-abort epoch and is ignored (see on_tx_done).
    }

    // ---- internals ----

    fn dispatch(&mut self, id: AgentId, call: AgentCall) {
        let mut agent = self.agents[id.0 as usize]
            .take()
            .expect("re-entrant agent dispatch"); // simlint: allow(unwrap, reason = "slot is only vacated inside this non-reentrant fn")
        let node = self.agent_node[id.0 as usize];
        // Recycle an effect buffer: dispatch recurses through apply_effects
        // (Send → handle_packet_at → dispatch), so each nesting depth holds
        // its own buffer; steady state allocates none.
        let mut effects = self.effect_bufs.pop().unwrap_or_default();
        {
            let mut ctx = Ctx::new(
                self.now,
                node,
                id,
                &mut self.agent_rngs[id.0 as usize],
                &mut self.log,
                &mut effects,
                &mut self.agent_packet_seq[id.0 as usize],
            );
            match call {
                AgentCall::Start => agent.on_start(&mut ctx),
                AgentCall::Timer(token) => agent.on_timer(&mut ctx, token),
                AgentCall::Packet(pkt) => agent.on_packet(&mut ctx, pkt),
            }
        }
        self.agents[id.0 as usize] = Some(agent);
        self.apply_effects(node, &mut effects);
        debug_assert!(effects.is_empty());
        self.effect_bufs.push(effects);
    }

    fn apply_effects(&mut self, node: NodeId, effects: &mut Vec<Effect>) {
        for eff in effects.drain(..) {
            match eff {
                Effect::Send(pkt) => {
                    self.stats.packets_sent += 1;
                    self.in_flight += 1;
                    self.record(node, CaptureKind::Sent, None, &pkt);
                    self.handle_packet_at(node, pkt);
                }
                Effect::SetTimer { at, token } => {
                    // simlint: allow(unwrap, reason = "effects originate from an agent installed at this node")
                    let agent = self.node_agent[node.0 as usize].expect("timer from unknown agent");
                    // `order::pack` rejects tokens over 2^36; agents use
                    // small enumerations plus per-subflow offsets well
                    // below that.
                    let key = order::pack(order::CLASS_TIMER, agent.0 as u64, token);
                    let cancel =
                        self.events
                            .push_keyed_cancellable(at, key, Event::Timer { agent, token });
                    // Re-arming replaces: revoke the superseded deadline so
                    // it can never fire stale.
                    let old = self
                        .timer_keys
                        .get_mut(agent.0 as usize)
                        .and_then(|keys| match keys.iter_mut().find(|(t, _)| *t == token) {
                            Some(entry) => Some(std::mem::replace(&mut entry.1, cancel)),
                            None => {
                                keys.push((token, cancel));
                                None
                            }
                        });
                    if let Some(old) = old {
                        if self.events.cancel(old) {
                            self.stats.timers_cancelled += 1;
                        }
                    }
                }
                Effect::CancelTimer { token } => {
                    // simlint: allow(unwrap, reason = "effects originate from an agent installed at this node")
                    let agent = self.node_agent[node.0 as usize].expect("timer from unknown agent");
                    let old = self.timer_keys.get_mut(agent.0 as usize).and_then(|keys| {
                        let i = keys.iter().position(|&(t, _)| t == token)?;
                        Some(keys.swap_remove(i).1)
                    });
                    if let Some(old) = old {
                        if self.events.cancel(old) {
                            self.stats.timers_cancelled += 1;
                        }
                    }
                }
            }
        }
    }

    /// A packet is present at `node`: deliver or forward.
    fn handle_packet_at(&mut self, node: NodeId, pkt: Packet) {
        if pkt.dst == node {
            if let Some(agent) = self.node_agent[node.0 as usize] {
                self.stats.packets_delivered += 1;
                self.in_flight -= 1;
                self.record(node, CaptureKind::Delivered, None, &pkt);
                self.dispatch(agent, AgentCall::Packet(pkt));
            } else {
                // Destination host has no stack; treat as unroutable.
                self.stats.packets_unroutable += 1;
                self.in_flight -= 1;
                self.record(node, CaptureKind::Unroutable, None, &pkt);
            }
            return;
        }
        match self.routing.fib(node).route(&pkt) {
            Some(out_link) => {
                self.record(node, CaptureKind::Forwarded, Some(out_link), &pkt);
                self.transmit_or_enqueue(node, out_link, pkt);
            }
            None => {
                self.stats.packets_unroutable += 1;
                self.in_flight -= 1;
                self.log.log(
                    self.now,
                    LogLevel::Warn,
                    "sim",
                    format!("no route for {pkt:?} at {node:?}"),
                );
                self.record(node, CaptureKind::Unroutable, None, &pkt);
            }
        }
    }

    /// Offer `pkt` to `link`'s transmitter in the direction leaving `from`.
    fn transmit_or_enqueue(&mut self, from: NodeId, link: LinkId, pkt: Packet) {
        let spec = self.topo.link(link);
        let dir = if from == spec.a { Dir::AtoB } else { Dir::BtoA };
        debug_assert!(spec.touches(from), "forwarding onto a detached link");
        let capacity = spec.capacity;
        if !self.links[link.0 as usize].up {
            // Interface down: the packet is lost at this hop.
            self.stats.packets_dropped += 1;
            self.in_flight -= 1;
            self.dir_stats(link, dir).on_drop(pkt.wire_size());
            if self.capture_cfg.wants(from, CaptureKind::Dropped) {
                self.record_meta(from, CaptureKind::Dropped, Some(link), pkt.meta());
            }
            return;
        }
        let state = &mut self.links[link.0 as usize].dirs[dir.index()];

        if !state.is_busy() {
            let tx_time = capacity.tx_time(pkt.wire_size() as u64);
            let epoch = state.epoch;
            state.transmitting = Some((pkt, tx_time));
            self.push_tx_done(link, dir, epoch, self.now + tx_time);
        } else {
            let meta = pkt.meta();
            let rng = &mut self.dir_rngs[link.0 as usize][dir.index()]; // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
            match state.queue.enqueue(self.now, pkt, rng) {
                EnqueueResult::Queued => {
                    let (p, b) = (state.queue.len_packets(), state.queue.len_bytes());
                    self.dir_stats(link, dir).observe_queue(p, b);
                }
                EnqueueResult::Dropped(reason) => {
                    self.stats.packets_dropped += 1;
                    self.in_flight -= 1;
                    self.dir_stats(link, dir).on_drop(meta.wire_size);
                    self.log.log(
                        self.now,
                        LogLevel::Debug,
                        "sim",
                        format!(
                            "drop({reason:?}) pkt#{} on {link:?}/{dir:?} at {from:?}",
                            meta.id
                        ),
                    );
                    if self.capture_cfg.wants(from, CaptureKind::Dropped) {
                        self.record_meta(from, CaptureKind::Dropped, Some(link), meta);
                    }
                }
            }
        }
    }

    /// Schedule a serialization-complete event with its canonical key.
    fn push_tx_done(&mut self, link: LinkId, dir: Dir, epoch: u64, at: SimTime) {
        let key = order::pack(order::CLASS_TX_DONE, order::dir_entity(link, dir), epoch);
        self.events
            .push_keyed(at, key, Event::TxDone { link, dir, epoch });
    }

    fn on_tx_done(&mut self, link: LinkId, dir: Dir, epoch: u64) {
        let spec = self.topo.link(link);
        let delay = spec.delay;
        let capacity = spec.capacity;
        let loss_rate = spec.loss_rate;
        let far_end = match dir {
            Dir::AtoB => spec.b,
            Dir::BtoA => spec.a,
        };
        let state = &mut self.links[link.0 as usize].dirs[dir.index()]; // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
                                                                        // A link-down event may have aborted the serialization this event
                                                                        // belongs to: the abort bumped the direction's epoch, so a stale
                                                                        // event (old epoch, or no transmission at all) is ignored.
        if epoch != state.epoch {
            return;
        }
        let Some((pkt, tx_time)) = state.transmitting.take() else {
            return;
        };
        // `tx_time` was fixed when the serialization started; a capacity
        // fault mid-transmission does not retroactively change it.
        self.dir_stats(link, dir).on_tx(pkt.wire_size(), tx_time);
        let rng = &mut self.dir_rngs[link.0 as usize][dir.index()]; // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
                                                                    // Wireless-style random corruption loss (after serialization).
        let corrupted = loss_rate > 0.0 && rng.chance(loss_rate);
        let jitter = if self.forward_jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(rng.next_below(self.forward_jitter.as_nanos() + 1))
        };
        if corrupted {
            self.stats.packets_dropped += 1;
            self.in_flight -= 1;
            self.dir_stats(link, dir).on_drop(pkt.wire_size());
        } else {
            let seq = &mut self.arrive_seq[link.0 as usize][dir.index()]; // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
            let key = order::pack(order::CLASS_ARRIVE, order::dir_entity(link, dir), *seq);
            *seq += 1;
            let at = self.now + delay + jitter;
            match self.peer_region(far_end) {
                None => {
                    let wire_slot = self.wire_put(pkt);
                    self.events.push_keyed(
                        at,
                        key,
                        Event::Arrive {
                            link,
                            dir,
                            wire_slot,
                        },
                    );
                }
                // The far end lives in another region: hand the arrival
                // off; it lands in the owner's queue under the same
                // (time, key) it would have had here.
                // simlint: allow(panic-surface, reason = "peer_region returns a region id below the partition's count, and the outbox has one slot per region")
                Some(peer) => self.outbox[peer as usize].push(parallel::RegionMsg::Arrive {
                    time: at,
                    key,
                    link,
                    dir,
                    pkt: Box::new(pkt),
                }),
            }
        }

        // Start the next packet, if any (the AQM may head-drop on the way).
        let state = &mut self.links[link.0 as usize].dirs[dir.index()]; // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
        let deq = state.queue.dequeue(self.now);
        for dropped in deq.dropped {
            self.stats.packets_dropped += 1;
            self.in_flight -= 1;
            self.dir_stats(link, dir).on_drop(dropped.wire_size());
        }
        if let Some(next) = deq.pkt {
            let tx_time = capacity.tx_time(next.wire_size() as u64);
            let state = &mut self.links[link.0 as usize].dirs[dir.index()]; // simlint: allow(panic-surface, reason = "LinkId is topology-issued and every per-link table holds exactly two directions")
            let epoch = state.epoch;
            state.transmitting = Some((next, tx_time));
            self.push_tx_done(link, dir, epoch, self.now + tx_time);
        }
    }

    /// If `node` belongs to another region of a partitioned run, its
    /// region id; `None` when `node` is ours (always, on the serial path).
    fn peer_region(&self, node: NodeId) -> Option<u32> {
        let map = self.node_region.as_ref()?;
        let r = map[node.0 as usize]; // simlint: allow(panic-surface, reason = "the region map is built with one entry per topology node")
        (r != self.region).then_some(r)
    }

    fn record(&mut self, node: NodeId, kind: CaptureKind, link: Option<LinkId>, pkt: &Packet) {
        if self.capture_cfg.wants(node, kind) {
            self.record_meta(node, kind, link, pkt.meta());
        }
    }

    /// Append one capture record, stamped with its canonical position
    /// `(current event key, intra-event index)` so region capture streams
    /// merge back into exact serial order.
    fn record_meta(
        &mut self,
        node: NodeId,
        kind: CaptureKind,
        link: Option<LinkId>,
        pkt: PacketMeta,
    ) {
        self.captures.push(CaptureRecord {
            time: self.now,
            node,
            kind,
            link,
            pkt,
        });
        self.capture_ord.push((self.cur_key, self.cur_sub));
        self.cur_sub += 1;
    }
}

/// Snapshot format version. Bumped whenever the captured state set changes
/// meaning (restore refuses a mismatched snapshot rather than silently
/// resuming from partial state).
pub const SNAPSHOT_VERSION: u32 = 1;

/// A versioned, self-contained copy of a simulator's full deterministic
/// state at one instant, produced by [`Simulator::checkpoint`].
///
/// The common prefix of a family of runs (e.g. the 0–4 s warm-up before a
/// fault study's first fault) is simulated once, checkpointed, and each
/// variant branches from the snapshot via [`Simulator::restore`] — with
/// byte-identical results to running each variant cold from t=0.
pub struct SimSnapshot {
    version: u32,
    sim: Simulator,
}

impl SimSnapshot {
    /// The format version this snapshot was captured with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Simulated time at which the snapshot was taken.
    pub fn time(&self) -> SimTime {
        self.sim.now
    }
}

impl std::fmt::Debug for SimSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSnapshot")
            .field("version", &self.version)
            .field("time", &self.sim.now)
            .field("agents", &self.sim.agents.len())
            .finish()
    }
}

/// Internal dispatch selector.
enum AgentCall {
    Start,
    Timer(u64),
    Packet(Packet),
}

/// The wire-pool slot index for a pool currently `len` entries long.
/// Overflowing `u32` would alias two live slots and silently cross-deliver
/// packets, so it is a hard error, not a saturation.
fn wire_slot_index(len: usize) -> u32 {
    // simlint: allow(unwrap, reason = "aliasing wire slots corrupts the run; fail loudly at the 2^32 boundary")
    u32::try_from(len).expect("wire pool exceeded u32::MAX slots")
}

#[cfg(test)]
mod wire_pool_tests {
    use super::wire_slot_index;

    #[test]
    fn slot_index_is_exact_below_the_boundary() {
        assert_eq!(wire_slot_index(0), 0);
        assert_eq!(wire_slot_index(123), 123);
        assert_eq!(wire_slot_index(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "wire pool exceeded u32::MAX slots")]
    fn slot_index_overflow_is_a_hard_error() {
        let _ = wire_slot_index(u32::MAX as usize + 1);
    }
}
