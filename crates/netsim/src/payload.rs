//! Allocation-free packet payloads.
//!
//! Every simulated packet carries its *really encoded* transport header in
//! [`crate::Packet::payload`]. A TCP header with every option this workspace
//! implements is at most 60 bytes, so the common case fits in a small inline
//! buffer and never touches the heap — the hot path of the simulator copies
//! a few words instead of bumping an `Arc` or allocating. Payloads larger
//! than [`INLINE_CAP`] bytes (only possible for exotic test traffic) fall
//! back to a shared [`Bytes`] buffer transparently.
//!
//! [`PayloadWriter`] is the matching builder: a fixed-capacity cursor that
//! implements [`bytes::BufMut`], so wire codecs write big-endian fields
//! exactly as they would into a `BytesMut` and then [`PayloadWriter::finish`]
//! into a [`Payload`] without ever allocating.

use bytes::Bytes;
use std::fmt;
use std::ops::Deref;

/// Largest payload stored inline (covers the 60-byte TCP header maximum).
pub const INLINE_CAP: usize = 64;

/// A packet payload: encoded header bytes, inline when they fit.
///
/// Equality and ordering are by content — an inline payload and a heap
/// payload holding the same bytes compare equal. Dereferences to `[u8]`.
#[derive(Clone)]
pub struct Payload(Repr);

#[derive(Clone)]
enum Repr {
    /// Up to [`INLINE_CAP`] bytes stored in place. Invariant: `len as usize
    /// <= INLINE_CAP`, enforced at every construction site.
    Inline { len: u8, buf: [u8; INLINE_CAP] },
    /// Spill-over for payloads that do not fit inline.
    Heap(Bytes),
}

impl Payload {
    /// The empty payload (inline, zero-length).
    pub const fn empty() -> Payload {
        Payload(Repr::Inline {
            len: 0,
            buf: [0; INLINE_CAP],
        })
    }

    /// Copy `s` into a payload: inline when it fits, heap otherwise.
    pub fn from_slice(s: &[u8]) -> Payload {
        match u8::try_from(s.len()) {
            Ok(len) if s.len() <= INLINE_CAP => {
                let mut buf = [0u8; INLINE_CAP];
                if let Some(dst) = buf.get_mut(..s.len()) {
                    dst.copy_from_slice(s);
                }
                Payload(Repr::Inline { len, buf })
            }
            _ => Payload(Repr::Heap(Bytes::copy_from_slice(s))),
        }
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Inline { len, buf } => buf.get(..usize::from(*len)).unwrap_or(&[]),
            Repr::Heap(b) => b,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => usize::from(*len),
            Repr::Heap(b) => b.len(),
        }
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True if this payload is stored inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.0, Repr::Inline { .. })
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Payload {
        if b.len() <= INLINE_CAP {
            Payload::from_slice(&b)
        } else {
            Payload(Repr::Heap(b))
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        if v.len() <= INLINE_CAP {
            Payload::from_slice(&v)
        } else {
            Payload(Repr::Heap(Bytes::from(v)))
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(s: &[u8]) -> Payload {
        Payload::from_slice(s)
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A fixed-capacity big-endian write cursor producing a [`Payload`].
///
/// Capacity is [`INLINE_CAP`] bytes; writes past the end are discarded (and
/// trip a debug assertion). Callers encoding bounded structures — like the
/// TCP header, whose data-offset field caps it at 60 bytes — can therefore
/// write unconditionally and [`finish`](PayloadWriter::finish) into an
/// always-inline payload.
pub struct PayloadWriter {
    buf: [u8; INLINE_CAP],
    len: usize,
}

impl PayloadWriter {
    /// A fresh, empty writer.
    pub fn new() -> PayloadWriter {
        PayloadWriter {
            buf: [0; INLINE_CAP],
            len: 0,
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.get(..self.len).unwrap_or(&[])
    }

    /// Append a slice. A write that would exceed the capacity is dropped
    /// whole (debug builds assert; encoders are expected to stay within
    /// their protocol's own length limits, which are all under the cap).
    pub fn put_slice(&mut self, s: &[u8]) {
        let end = self.len + s.len();
        match self.buf.get_mut(self.len..end) {
            Some(dst) => {
                dst.copy_from_slice(s);
                self.len = end;
            }
            None => {
                debug_assert!(
                    false,
                    "payload writer overflow: {} + {} > {INLINE_CAP}",
                    self.len,
                    s.len()
                );
            }
        }
    }

    /// Consume the writer, producing an (inline) payload.
    pub fn finish(self) -> Payload {
        Payload::from_slice(self.as_slice())
    }
}

impl Default for PayloadWriter {
    fn default() -> PayloadWriter {
        PayloadWriter::new()
    }
}

impl bytes::BufMut for PayloadWriter {
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BufMut;

    #[test]
    fn empty_is_inline_and_zero_length() {
        let p = Payload::empty();
        assert!(p.is_inline());
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.as_slice(), &[] as &[u8]);
        assert_eq!(Payload::default(), p);
    }

    #[test]
    fn small_slices_stay_inline() {
        let data: Vec<u8> = (0..INLINE_CAP as u8).collect();
        let p = Payload::from_slice(&data);
        assert!(p.is_inline());
        assert_eq!(p.len(), INLINE_CAP);
        assert_eq!(p.as_slice(), &data[..]);
        assert_eq!(p.to_vec(), data);
    }

    #[test]
    fn oversized_slices_spill_to_heap() {
        let data = vec![7u8; INLINE_CAP + 1];
        let p = Payload::from_slice(&data);
        assert!(!p.is_inline());
        assert_eq!(p.len(), INLINE_CAP + 1);
        assert_eq!(p.as_slice(), &data[..]);
    }

    #[test]
    fn equality_is_by_content_across_representations() {
        let data = vec![1u8, 2, 3, 4];
        let inline = Payload::from_slice(&data);
        let heap = Payload(Repr::Heap(Bytes::from(data.clone())));
        assert!(inline.is_inline());
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        assert_ne!(inline, Payload::empty());
    }

    #[test]
    fn conversions_pick_inline_when_small() {
        assert!(Payload::from(Bytes::from(vec![1, 2, 3])).is_inline());
        assert!(Payload::from(vec![1u8, 2, 3]).is_inline());
        assert!(Payload::from(&[1u8, 2, 3][..]).is_inline());
        assert!(!Payload::from(vec![0u8; 200]).is_inline());
        assert!(!Payload::from(Bytes::from(vec![0u8; 200])).is_inline());
        assert_eq!(Payload::from(vec![1u8, 2, 3]).as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn deref_and_as_ref_expose_bytes() {
        let p = Payload::from_slice(&[9, 8, 7]);
        assert_eq!(&p[..], &[9, 8, 7]);
        assert_eq!(p.as_ref(), &[9, 8, 7]);
        assert_eq!(p.iter().copied().sum::<u8>(), 24);
    }

    #[test]
    fn writer_builds_big_endian_inline_payloads() {
        let mut w = PayloadWriter::new();
        assert!(w.is_empty());
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_slice(&[1, 2]);
        assert_eq!(w.len(), 17);
        assert_eq!(
            w.as_slice(),
            &[7, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8, 1, 2]
        );
        let p = w.finish();
        assert!(p.is_inline());
        assert_eq!(p.len(), 17);
    }

    #[test]
    fn writer_can_fill_to_capacity() {
        let mut w = PayloadWriter::new();
        w.put_slice(&[0xAA; INLINE_CAP]);
        assert_eq!(w.len(), INLINE_CAP);
        let p = w.finish();
        assert!(p.is_inline());
        assert_eq!(p.len(), INLINE_CAP);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "payload writer overflow"))]
    fn writer_overflow_is_rejected() {
        let mut w = PayloadWriter::new();
        w.put_slice(&[0; INLINE_CAP]);
        w.put_slice(&[1]);
        // Release builds drop the overflowing write instead of panicking.
        assert_eq!(w.len(), INLINE_CAP);
    }

    #[test]
    fn debug_format_is_hex() {
        let p = Payload::from_slice(&[0x01, 0xFF]);
        assert_eq!(format!("{p:?}"), "b\"\\x01\\xff\"");
    }
}
