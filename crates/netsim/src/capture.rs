//! Packet capture — the simulator's "tshark".
//!
//! The paper measures throughput by capturing at the destination with tshark
//! and filtering by tag. [`CaptureConfig`] selects which nodes and which
//! event kinds to record; the simulator appends a [`CaptureRecord`] per
//! matching event. `simtrace` turns the record stream into per-tag
//! throughput time series.

use crate::packet::{LinkId, NodeId, PacketMeta};
use simbase::SimTime;
use std::collections::BTreeSet;

/// What happened to the packet at the capture point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CaptureKind {
    /// A host agent handed the packet to the network.
    Sent,
    /// A node forwarded the packet towards the next hop.
    Forwarded,
    /// The packet reached its destination agent.
    Delivered,
    /// The packet was dropped at a link's output queue.
    Dropped,
    /// The packet arrived at a node with no route and was discarded.
    Unroutable,
}

/// One capture record.
#[derive(Debug, Clone)]
pub struct CaptureRecord {
    /// Simulated timestamp of the event.
    pub time: SimTime,
    /// Node where the event occurred.
    pub node: NodeId,
    /// Event kind.
    pub kind: CaptureKind,
    /// Link involved (outgoing for `Forwarded`/`Dropped`, none otherwise).
    pub link: Option<LinkId>,
    /// Packet metadata.
    pub pkt: PacketMeta,
}

/// Which events to record.
#[derive(Debug, Clone)]
pub struct CaptureConfig {
    /// Nodes to capture at; `None` = all nodes.
    nodes: Option<BTreeSet<NodeId>>,
    /// Kinds to capture.
    kinds: BTreeSet<CaptureKind>,
    /// Master switch.
    enabled: bool,
}

impl Default for CaptureConfig {
    /// Disabled by default; enabling capture is an explicit choice because
    /// record volume scales with packet volume.
    fn default() -> Self {
        CaptureConfig {
            nodes: None,
            kinds: BTreeSet::new(),
            enabled: false,
        }
    }
}

impl CaptureConfig {
    /// Capture nothing.
    pub fn off() -> Self {
        Self::default()
    }

    /// The paper's setup: record deliveries at the destination host (plus
    /// drops anywhere, which are cheap and invaluable for debugging).
    pub fn receiver_side(dst: NodeId) -> Self {
        let mut kinds = BTreeSet::new();
        kinds.insert(CaptureKind::Delivered);
        kinds.insert(CaptureKind::Dropped);
        kinds.insert(CaptureKind::Unroutable);
        CaptureConfig {
            nodes: Some(BTreeSet::from([dst])),
            kinds,
            enabled: true,
        }
    }

    /// Record every kind at every node (tests, small runs).
    pub fn everything() -> Self {
        let kinds = [
            CaptureKind::Sent,
            CaptureKind::Forwarded,
            CaptureKind::Delivered,
            CaptureKind::Dropped,
            CaptureKind::Unroutable,
        ]
        .into_iter()
        .collect();
        CaptureConfig {
            nodes: None,
            kinds,
            enabled: true,
        }
    }

    /// Also capture at `node` (clears the "all nodes" wildcard if present
    /// only when it was explicitly restricted before).
    pub fn add_node(mut self, node: NodeId) -> Self {
        match &mut self.nodes {
            Some(set) => {
                set.insert(node);
            }
            None => {
                self.nodes = Some(BTreeSet::from([node]));
            }
        }
        self.enabled = true;
        self
    }

    /// Also capture events of `kind`.
    pub fn add_kind(mut self, kind: CaptureKind) -> Self {
        self.kinds.insert(kind);
        self.enabled = true;
        self
    }

    /// Should an event of `kind` at `node` be recorded?
    ///
    /// `Dropped`/`Unroutable` events are recorded regardless of the node
    /// filter (they occur at interior nodes the receiver-side filter would
    /// exclude, and losing them silently would make debugging miserable).
    pub fn wants(&self, node: NodeId, kind: CaptureKind) -> bool {
        if !self.enabled || !self.kinds.contains(&kind) {
            return false;
        }
        if matches!(kind, CaptureKind::Dropped | CaptureKind::Unroutable) {
            return true;
        }
        match &self.nodes {
            None => true,
            Some(set) => set.contains(&node),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_by_default() {
        let c = CaptureConfig::default();
        assert!(!c.wants(NodeId(0), CaptureKind::Delivered));
    }

    #[test]
    fn receiver_side_filters_by_node() {
        let c = CaptureConfig::receiver_side(NodeId(5));
        assert!(c.wants(NodeId(5), CaptureKind::Delivered));
        assert!(!c.wants(NodeId(4), CaptureKind::Delivered));
        assert!(!c.wants(NodeId(5), CaptureKind::Sent));
    }

    #[test]
    fn drops_recorded_anywhere() {
        let c = CaptureConfig::receiver_side(NodeId(5));
        assert!(c.wants(NodeId(2), CaptureKind::Dropped));
        assert!(c.wants(NodeId(0), CaptureKind::Unroutable));
    }

    #[test]
    fn everything_captures_everything() {
        let c = CaptureConfig::everything();
        for kind in [
            CaptureKind::Sent,
            CaptureKind::Forwarded,
            CaptureKind::Delivered,
            CaptureKind::Dropped,
        ] {
            assert!(c.wants(NodeId(9), kind));
        }
    }

    #[test]
    fn builders_compose() {
        let c = CaptureConfig::off()
            .add_node(NodeId(1))
            .add_kind(CaptureKind::Sent);
        assert!(c.wants(NodeId(1), CaptureKind::Sent));
        assert!(!c.wants(NodeId(2), CaptureKind::Sent));
        assert!(!c.wants(NodeId(1), CaptureKind::Delivered));
    }
}
