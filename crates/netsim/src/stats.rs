//! Per-link and per-simulation counters.
//!
//! Statistics answer the questions a topology debugging session always asks:
//! which link saturated, where did the drops happen, how full were the
//! queues. They are cheap (a handful of integer adds per packet) and always
//! on.

use serde::Serialize;
use simbase::SimDuration;

/// Counters for one direction of one link.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct LinkDirStats {
    /// Packets fully serialized onto the wire.
    pub tx_packets: u64,
    /// Wire bytes fully serialized.
    pub tx_bytes: u64,
    /// Packets dropped at the output queue.
    pub drops: u64,
    /// Bytes dropped at the output queue.
    pub drop_bytes: u64,
    /// Maximum instantaneous queue depth seen (packets).
    pub max_queue_packets: usize,
    /// Maximum instantaneous queue depth seen (bytes).
    pub max_queue_bytes: u64,
    /// Cumulative busy time of the transmitter.
    pub busy_time: SimDuration,
}

impl LinkDirStats {
    /// Record a completed transmission.
    pub fn on_tx(&mut self, wire_bytes: u32, tx_time: SimDuration) {
        self.tx_packets += 1;
        self.tx_bytes += wire_bytes as u64;
        self.busy_time += tx_time;
    }

    /// Record a queue drop.
    pub fn on_drop(&mut self, wire_bytes: u32) {
        self.drops += 1;
        self.drop_bytes += wire_bytes as u64;
    }

    /// Track the high-water mark of the queue.
    pub fn observe_queue(&mut self, packets: usize, bytes: u64) {
        self.max_queue_packets = self.max_queue_packets.max(packets);
        self.max_queue_bytes = self.max_queue_bytes.max(bytes);
    }

    /// Link utilization over `elapsed`: busy time / wall time, in `[0, 1]`.
    pub fn utilization(&self, elapsed: SimDuration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.busy_time.as_nanos() as f64 / elapsed.as_nanos() as f64
    }

    /// Fraction of offered packets that were dropped.
    pub fn drop_rate(&self) -> f64 {
        let offered = self.tx_packets + self.drops;
        if offered == 0 {
            return 0.0;
        }
        self.drops as f64 / offered as f64
    }
}

/// Simulation-wide counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SimStats {
    /// Total events processed.
    pub events: u64,
    /// Packets created by agents.
    pub packets_sent: u64,
    /// Packets delivered to destination agents.
    pub packets_delivered: u64,
    /// Packets dropped at queues.
    pub packets_dropped: u64,
    /// Packets discarded for lack of a route.
    pub packets_unroutable: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Timer deadlines cancelled before firing (replaced by a re-arm or
    /// revoked via `Ctx::cancel_timer`); these never pop from the queue.
    pub timers_cancelled: u64,
}

impl SimStats {
    /// Conservation check: everything sent is delivered, dropped, lost to
    /// routing, or still in flight (`in_flight` supplied by the caller).
    pub fn conserved(&self, in_flight: u64) -> bool {
        self.packets_sent
            == self.packets_delivered + self.packets_dropped + self.packets_unroutable + in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_accumulates() {
        let mut s = LinkDirStats::default();
        s.on_tx(1500, SimDuration::from_micros(120));
        s.on_tx(40, SimDuration::from_micros(4));
        assert_eq!(s.tx_packets, 2);
        assert_eq!(s.tx_bytes, 1540);
        assert_eq!(s.busy_time, SimDuration::from_micros(124));
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut s = LinkDirStats::default();
        s.on_tx(1500, SimDuration::from_millis(250));
        assert!((s.utilization(SimDuration::from_secs(1)) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn drop_rate() {
        let mut s = LinkDirStats::default();
        assert_eq!(s.drop_rate(), 0.0);
        s.on_tx(100, SimDuration::from_nanos(1));
        s.on_tx(100, SimDuration::from_nanos(1));
        s.on_tx(100, SimDuration::from_nanos(1));
        s.on_drop(100);
        assert!((s.drop_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn queue_high_water_mark() {
        let mut s = LinkDirStats::default();
        s.observe_queue(3, 4500);
        s.observe_queue(1, 1500);
        s.observe_queue(5, 2000);
        assert_eq!(s.max_queue_packets, 5);
        assert_eq!(s.max_queue_bytes, 4500);
    }

    #[test]
    fn conservation() {
        let s = SimStats {
            packets_sent: 10,
            packets_delivered: 6,
            packets_dropped: 2,
            packets_unroutable: 1,
            ..Default::default()
        };
        assert!(s.conserved(1));
        assert!(!s.conserved(0));
    }
}
