//! Congestion-window dynamics under the hood of Figure 2.
//!
//! The paper measures *receiver-side throughput*; this example opens the
//! sender and plots each subflow's congestion window instead — the state
//! variable the congestion-control algorithms actually manipulate. The
//! "shake down" to the optimum is visible as Path 2's window being pushed
//! down while Path 3's grows.
//!
//! Run: `cargo run --example cwnd_dynamics --release`

use mptcp_overlap::mptcpsim::{
    common_destination, install_subflows, CcAlgo, MptcpConfig, MptcpReceiverAgent, MptcpSenderAgent,
};
use mptcp_overlap::netsim::{CaptureConfig, RoutingTables, Simulator};
use mptcp_overlap::prelude::*;
use mptcp_overlap::simtrace;

fn main() {
    for algo in [CcAlgo::Cubic, CcAlgo::Lia] {
        let net = PaperNetwork::new();
        let mut rt = RoutingTables::new(&net.topology);
        let subflows = install_subflows(&mut rt, &net.paths, 1, 5000);
        // Reorder: default path (Path 2) first, keeping canonical tags.
        let mut subflows = subflows;
        subflows.swap(0, net.default_path);
        let dst = common_destination(&net.paths);
        let mut sim = Simulator::new(net.topology.clone(), rt, 42);
        sim.set_capture(CaptureConfig::off());
        sim.set_forward_jitter(SimDuration::from_micros(20));
        let cfg = MptcpConfig {
            algo,
            cwnd_trace_interval: Some(SimDuration::from_millis(50)),
            ..MptcpConfig::bulk(dst, subflows)
        };
        let sender_id = sim.add_agent(net.src, Box::new(MptcpSenderAgent::new(cfg)), SimTime::ZERO);
        sim.add_agent(dst, Box::new(MptcpReceiverAgent::default()), SimTime::ZERO);
        let end = SimTime::from_secs(10);
        sim.run_until(end);

        let sender = sim
            .agent(sender_id)
            .as_any()
            .unwrap()
            .downcast_ref::<MptcpSenderAgent>()
            .unwrap();
        let trace = sender.cwnd_trace();

        // Build one cwnd series (in packets) per subflow.
        let nbins = 200; // 10 s / 50 ms
        let mut series = Vec::new();
        for sf in 0..3 {
            let mut vals = vec![0.0; nbins];
            for s in trace.iter().filter(|s| s.subflow == sf) {
                let bin = (s.time.as_nanos() / 50_000_000) as usize;
                if bin < nbins {
                    vals[bin] = s.cwnd as f64 / 1460.0;
                }
            }
            // Subflow order is default-first; map back to path labels.
            let path = if sf == 0 {
                2
            } else if sf == 1 {
                1
            } else {
                3
            };
            series.push(simtrace::TimeSeries::new(
                format!("Path {path} cwnd"),
                SimTime::ZERO,
                SimDuration::from_millis(50),
                vals,
            ));
        }
        let refs: Vec<&simtrace::TimeSeries> = series.iter().collect();
        println!(
            "== {} — subflow congestion windows (packets) ==",
            algo.name()
        );
        print!(
            "{}",
            simtrace::ascii_chart(
                &refs,
                &simtrace::ChartOptions {
                    y_label: "cwnd [pkts]".into(),
                    ..Default::default()
                }
            )
        );
        println!();
    }
}
