//! Scheduler comparison on the paper's overlapping-path network:
//! minRTT (Linux default), round-robin, and redundant.
//!
//! The scheduler decides which subflow carries each chunk; on *bulk*
//! transfers over overlapping paths the congestion controller dominates,
//! but the redundant scheduler pays a visible duplicate-bytes tax for its
//! latency insurance.
//!
//! Run: `cargo run --example scheduler_comparison --release`

use mptcp_overlap::prelude::*;

fn main() {
    println!("Scheduler comparison on the paper network (CUBIC, 10 s)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>12}",
        "scheduler", "total Mbps", "efficiency", "dup DSN bytes", "drops"
    );
    for sched in [
        SchedulerKind::MinRtt,
        SchedulerKind::RoundRobin,
        SchedulerKind::Redundant,
    ] {
        let net = PaperNetwork::new();
        let result = Scenario {
            default_path: net.default_path,
            scheduler: sched,
            ..Scenario::new(net.topology, net.paths)
        }
        .with_timing(SimDuration::from_secs(10), SimDuration::from_millis(100))
        .run();
        println!(
            "{:<12} {:>12.1} {:>11.0}% {:>14} {:>12}",
            format!("{sched:?}"),
            result.steady_total_mbps(),
            result.efficiency() * 100.0,
            result.duplicate_bytes,
            result.drops,
        );
    }
    println!(
        "\nRedundant duplicates every chunk on all three subflows: connection\n\
         goodput collapses to roughly the slowest path's share while wire\n\
         throughput stays high — the cost of latency insurance."
    );
}
