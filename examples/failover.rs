//! MPTCP failover — the end-to-end *reliability* motivation from the
//! paper's introduction ("improve end-to-end reliability … by allowing
//! users to avoid congested links").
//!
//! Two disjoint paths; the faster path's access link is cut at t = 2 s and
//! restored at t = 6 s. Watch the connection: the failed subflow's
//! unacknowledged data is reinjected on the survivor within a couple of
//! RTOs, throughput continues, and the subflow rejoins after recovery.
//!
//! Run: `cargo run --example failover --release`

use mptcp_overlap::mptcpsim::{
    common_destination, install_subflows, MptcpConfig, MptcpReceiverAgent, MptcpSenderAgent,
};
use mptcp_overlap::netsim::{
    CaptureConfig, Path, QueueConfig, RoutingTables, Simulator, Tag, Topology,
};
use mptcp_overlap::prelude::*;
use mptcp_overlap::simtrace::{SamplerConfig, ThroughputSampler};

fn main() {
    let mut topo = Topology::new();
    let s = topo.add_node("s");
    let a = topo.add_node("a");
    let b = topo.add_node("b");
    let d = topo.add_node("d");
    let q = QueueConfig::DropTailPackets(48);
    let ms = SimDuration::from_millis;
    let fast_access = topo.add_link(s, a, Bandwidth::from_mbps(30), ms(2), q);
    topo.add_link(a, d, Bandwidth::from_mbps(30), ms(2), q);
    topo.add_link(s, b, Bandwidth::from_mbps(15), ms(5), q);
    topo.add_link(b, d, Bandwidth::from_mbps(15), ms(5), q);
    let p1 = Path::from_nodes(&topo, &[s, a, d]).unwrap();
    let p2 = Path::from_nodes(&topo, &[s, b, d]).unwrap();
    let paths = vec![p1, p2];

    let mut rt = RoutingTables::new(&topo);
    let subflows = install_subflows(&mut rt, &paths, 1, 5000);
    let dst = common_destination(&paths);
    let mut sim = Simulator::new(topo, rt, 21);
    sim.set_capture(CaptureConfig::receiver_side(dst));
    sim.set_forward_jitter(SimDuration::from_micros(20));
    let sender_id = sim.add_agent(
        s,
        Box::new(MptcpSenderAgent::new(MptcpConfig::bulk(dst, subflows))),
        SimTime::ZERO,
    );
    sim.add_agent(dst, Box::new(MptcpReceiverAgent::default()), SimTime::ZERO);

    // The failure script.
    sim.schedule_link_down(fast_access, SimTime::from_secs(2));
    sim.schedule_link_up(fast_access, SimTime::from_secs(6));

    let end = SimTime::from_secs(10);
    sim.run_until(end);

    let sampler = ThroughputSampler::from_records(
        sim.captures(),
        &SamplerConfig::tshark_like(dst, SimDuration::from_millis(250), end),
    );
    println!("t[s]   path1   path2   total   (link down at 2 s, up at 6 s)");
    let p1s = sampler.tag(Tag(1));
    let p2s = sampler.tag(Tag(2));
    for i in 0..40 {
        let t = i as f64 * 0.25;
        let v1 = p1s.map(|s| s.values()[i]).unwrap_or(0.0);
        let v2 = p2s.map(|s| s.values()[i]).unwrap_or(0.0);
        let bar = "#".repeat(((v1 + v2) / 1.2) as usize);
        println!("{t:>4.2}  {v1:>6.1}  {v2:>6.1}  {:>6.1}  {bar}", v1 + v2);
    }

    let sender = sim
        .agent(sender_id)
        .as_any()
        .unwrap()
        .downcast_ref::<MptcpSenderAgent>()
        .unwrap();
    println!(
        "\nbytes reinjected onto the surviving subflow: {}",
        sender.stats().bytes_reinjected
    );
    println!(
        "a single-path TCP connection on path 1 would have been dead for 4 seconds;\n\
         MPTCP rescheduled the stranded data and kept the application stream moving."
    );
}
