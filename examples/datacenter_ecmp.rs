//! ECMP-based multipathing in a k-ary fat-tree — the alternative "tagging"
//! substrate the paper mentions (path selection through the hashing used in
//! equal-cost multi-path routing, as in Raiciu et al., "Improving datacenter
//! performance and robustness with multipath TCP").
//!
//! Built on the `worldgen` scenario library: a seeded k=4 fat-tree where
//! every switch hashes each five-tuple onto one of its equal-cost uplinks.
//! An MPTCP subflow is a distinct five-tuple, so adding subflows covers more
//! ECMP buckets — but the hash is oblivious, so two subflows of the same
//! connection can land on *overlapping* or even *identical* paths. That is
//! exactly the paper's taxonomy (Table 1), arising here from infrastructure
//! rather than construction.
//!
//! The example shows both layers:
//!  1. path extraction — how often k random subflow pairs collide, per the
//!     overlap classes, versus the Nakasan-style max-disjoint selector;
//!  2. a full fabric run — every host busy, aggregate goodput and Jain
//!     fairness under ECMP placement vs explicit max-disjoint placement.
//!
//! Run: `cargo run --example datacenter_ecmp --release`

use mptcp_overlap::prelude::*;
use mptcp_overlap::worldgen::{FatTree, FatTreeConfig, PairClass};

fn main() {
    // One seeded fabric: k=4 — 4 pods, 16 hosts, 20 switches. Every switch
    // gets its own ECMP hash seed derived from the master seed, so the whole
    // world is a pure function of `seed`.
    let tree = FatTree::build(&FatTreeConfig::default());
    let (src, dst) = (tree.hosts[0], tree.hosts[15]); // inter-pod pair
    println!(
        "k={} fat-tree: {} hosts, {} equal-cost paths between inter-pod hosts\n",
        tree.k,
        tree.hosts.len(),
        tree.equal_cost_path_count(src, dst),
    );

    // Layer 1: what does ECMP hashing do to a 2-subflow connection?
    println!("2-subflow path extraction over 100 connection seeds (paper Table-1 classes):");
    let mut counts = [0usize; 3];
    for conn_seed in 0..100 {
        let paths = tree.ecmp_subflow_paths(src, dst, conn_seed, 2);
        let bucket = match tree.classify_pair(&paths[0], &paths[1]) {
            PairClass::Disjoint => 0,
            PairClass::Partial(_) => 1,
            PairClass::Identical => 2,
        };
        counts[bucket] += 1;
    }
    println!(
        "  ecmp hash:     disjoint {:>3}  partial {:>3}  identical {:>3}",
        counts[0], counts[1], counts[2]
    );
    let chosen = tree.max_disjoint_paths(src, dst, 2);
    println!(
        "  max-disjoint:  always {} (selector spreads subflows over distinct aggregation\n\
         \x20                switches; only same-edge host pairs can ever overlap)\n",
        tree.classify_pair(&chosen[0], &chosen[1]).label(),
    );

    // Layer 2: the fleet view. Eight concurrent MPTCP connections claim all
    // sixteen hosts; per-connection goodput is regressed against the overlap
    // class in `results/worldgen_table.txt` — here we print the aggregate.
    println!("full-fabric runs (8 connections, every host busy, LIA, 400 ms):");
    println!("  selector  seed  coll%  total_mbps   jain");
    for seed in 0..2 {
        for selector in [SubflowSelector::Ecmp, SubflowSelector::MaxDisjoint] {
            let run = run_fabric(&FabricCell::table(seed, selector));
            println!(
                "  {:<8}  {:>4}  {:>5.1}  {:>10.2}  {:>5.3}",
                run.cell.selector.label(),
                seed,
                100.0 * run.collision_rate,
                run.total_mbps(),
                run.jain_fairness(),
            );
        }
    }
    println!(
        "\nMore subflows -> more ECMP buckets covered, but oblivious hashing makes\n\
         overlapping subflows routine — the paper's hard case, emerging at scale.\n\
         Per-connection disjointness is *not* the same as fleet-level balance:\n\
         at full occupancy the hash's global randomization can beat greedy\n\
         per-connection max-disjoint placement (see results/worldgen_table.txt)."
    );
}
