//! ECMP-based multipathing in a small leaf–spine fabric — the alternative
//! "tagging" substrate the paper mentions (path selection through the
//! hashing used in equal-cost multi-path routing, as in Raiciu et al.,
//! "Improving datacenter performance and robustness with multipath TCP").
//!
//! Two leaf switches, three spines. Each MPTCP subflow is a distinct
//! five-tuple, so the ECMP hash maps it onto some spine. With enough
//! subflows, the connection covers several spines and aggregates their
//! capacity — no explicit tags required.
//!
//! Run: `cargo run --example datacenter_ecmp --release`

use mptcp_overlap::mptcpsim::{MptcpConfig, MptcpReceiverAgent, MptcpSenderAgent, SubflowConfig};
use mptcp_overlap::netsim::{
    CaptureConfig, CaptureKind, NodeId, QueueConfig, RoutingTables, Simulator, Tag, Topology,
};
use mptcp_overlap::prelude::*;

fn main() {
    // Topology: host A — leaf1 — {spine1..3} — leaf2 — host B.
    let mut topo = Topology::new();
    let host_a = topo.add_node("hostA");
    let leaf1 = topo.add_node("leaf1");
    let leaf2 = topo.add_node("leaf2");
    let spines: Vec<NodeId> = (0..3).map(|i| topo.add_node(format!("spine{i}"))).collect();
    let host_b = topo.add_node("hostB");
    let q = QueueConfig::DropTailPackets(64);
    let us = SimDuration::from_micros;
    topo.add_link(host_a, leaf1, Bandwidth::from_gbps(1), us(5), q);
    topo.add_link(leaf2, host_b, Bandwidth::from_gbps(1), us(5), q);
    let mut uplinks = Vec::new();
    for &sp in &spines {
        uplinks.push(topo.add_link(leaf1, sp, Bandwidth::from_mbps(100), us(10), q));
        topo.add_link(sp, leaf2, Bandwidth::from_mbps(100), us(10), q);
    }

    // Routing: hosts and spines use defaults; the leaves use ECMP groups
    // over the three spines (hash of the subflow five-tuple).
    let mut rt = RoutingTables::new(&topo);
    rt.install_all_default_routes(&topo);
    rt.fib_mut(leaf1).set_ecmp_group(host_b, uplinks.clone());
    let downlinks: Vec<_> = spines
        .iter()
        .map(|&sp| topo.link_between(sp, leaf2).unwrap())
        .collect();
    let _ = downlinks;
    // Reverse direction (ACKs) hashes over the same spines.
    let rev_uplinks: Vec<_> = spines
        .iter()
        .map(|&sp| topo.link_between(leaf2, sp).unwrap())
        .collect();
    rt.fib_mut(leaf2).set_ecmp_group(host_a, rev_uplinks);

    for n_subflows in [1u16, 2, 4, 8] {
        let mut sim = Simulator::new(topo.clone(), rt.clone(), 7);
        sim.set_capture(CaptureConfig::receiver_side(host_b));
        // Untagged subflows: Tag::NONE means the FIB's ECMP group decides —
        // the hash of the port pair picks the spine, exactly like a real
        // fabric.
        let subflows: Vec<SubflowConfig> = (0..n_subflows)
            .map(|i| SubflowConfig {
                tag: Tag::NONE,
                src_port: 40_000 + i,
                dst_port: 80,
            })
            .collect();
        let cfg = MptcpConfig {
            join_delay: SimDuration::from_millis(1),
            ..MptcpConfig::bulk(host_b, subflows)
        };
        sim.add_agent(host_a, Box::new(MptcpSenderAgent::new(cfg)), SimTime::ZERO);
        sim.add_agent(
            host_b,
            Box::new(MptcpReceiverAgent::default()),
            SimTime::ZERO,
        );
        let end = SimTime::from_secs(4);
        sim.run_until(end);

        let bytes: u64 = sim
            .captures()
            .iter()
            .filter(|c| {
                c.kind == CaptureKind::Delivered
                    && c.pkt.data_len > 0
                    && c.time >= SimTime::from_secs(1)
            })
            .map(|c| c.pkt.wire_size as u64)
            .sum();
        let mbps = bytes as f64 * 8.0 / 3.0 / 1e6;
        // How many distinct spines did the subflows cover?
        let used = uplinks
            .iter()
            .filter(|&&l| {
                sim.link_stats(l, mptcp_overlap::netsim::Dir::AtoB)
                    .tx_packets
                    > 100
            })
            .count();
        println!("{n_subflows} subflow(s): {mbps:>6.1} Mbps across {used} of 3 spines (max 300)");
    }
    println!(
        "\nMore subflows -> more ECMP buckets covered -> higher aggregate, the\n\
         datacenter-MPTCP effect (Raiciu et al. 2011) without explicit tags."
    );
}
