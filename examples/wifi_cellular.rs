//! The classic MPTCP use case from the paper's introduction: a host
//! connected through **Wi-Fi and cellular at the same time** — two fully
//! disjoint paths with very different bandwidth and delay. With disjoint
//! paths there is no coupling constraint: the optimum is simply the sum of
//! the two capacities, and every congestion controller should aggregate.
//!
//! Run: `cargo run --example wifi_cellular --release`

use mptcp_overlap::prelude::*;

fn build() -> (Topology, Vec<Path>) {
    let mut t = Topology::new();
    let phone = t.add_node("phone");
    let wifi_ap = t.add_node("wifi-ap");
    let lte_enb = t.add_node("lte-enb");
    let server = t.add_node("server");
    let q = QueueConfig::DropTailPackets(64);
    // Wi-Fi: fast and near.
    t.add_link(
        phone,
        wifi_ap,
        Bandwidth::from_mbps(50),
        SimDuration::from_millis(3),
        q,
    );
    t.add_link(
        wifi_ap,
        server,
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(7),
        q,
    );
    // LTE: slower and farther.
    t.add_link(
        phone,
        lte_enb,
        Bandwidth::from_mbps(20),
        SimDuration::from_millis(15),
        q,
    );
    t.add_link(
        lte_enb,
        server,
        Bandwidth::from_mbps(100),
        SimDuration::from_millis(20),
        q,
    );
    let wifi = Path::from_nodes(&t, &[phone, wifi_ap, server]).unwrap();
    let lte = Path::from_nodes(&t, &[phone, lte_enb, server]).unwrap();
    (t, vec![wifi, lte])
}

fn main() {
    let (topo, paths) = build();
    println!("Wi-Fi + cellular aggregation (disjoint paths)\n");

    for algo in [CcAlgo::Cubic, CcAlgo::Lia, CcAlgo::Olia] {
        let (topo, paths) = (topo.clone(), paths.clone());
        let result = Scenario::new(topo, paths)
            .with_algo(algo)
            .with_timing(SimDuration::from_secs(8), SimDuration::from_millis(100))
            .run();
        println!(
            "{:<6} Wi-Fi {:>5.1} Mbps + LTE {:>5.1} Mbps = {:>5.1} / {:.0} Mbps  ({:.0}%)",
            algo.name(),
            result.per_path_steady_mbps[0],
            result.per_path_steady_mbps[1],
            result.steady_total_mbps(),
            result.lp.total_mbps,
            result.efficiency() * 100.0,
        );
    }
    println!(
        "\nWith disjoint paths the LP is trivial (sum of bottlenecks) and even\n\
         the coupled algorithms aggregate — the hard case in the paper is\n\
         specifically *overlapping* paths."
    );
}
