//! The classic MPTCP use case from the paper's introduction: a host
//! connected through **Wi-Fi and cellular at the same time** — two fully
//! disjoint paths with very different bandwidth and delay.
//!
//! Built on the `worldgen` scenario library: `MobileNet` is the seeded
//! wifi+cellular substrate and `MobilityProfile` compiles a walk-away /
//! walk-back pattern into a deterministic fault schedule (Wi-Fi capacity
//! ramps down, a hard handover outage, ramp back up). Two views:
//!
//!  1. static — with disjoint paths there is no coupling constraint, the
//!     LP optimum is the sum of the two access capacities, and every
//!     congestion controller should aggregate;
//!  2. mobile — the same connection under the mobility schedule: goodput
//!     retained across handovers and how traffic shifts to cellular.
//!
//! Run: `cargo run --example wifi_cellular --release`

use mptcp_overlap::prelude::*;
use mptcp_overlap::worldgen::{MobileNet, MobileNetConfig, MobilityProfile};

fn main() {
    let cfg = MobileNetConfig::default();
    let net = MobileNet::build(&cfg);
    let profile = MobilityProfile::default();
    println!(
        "Wi-Fi {} + cellular {} (disjoint paths), {} walk cycles of {:.0} s\n",
        cfg.wifi_bw,
        cfg.cell_bw,
        profile.cycles,
        profile.period.as_secs_f64(),
    );

    // Static view: the easy case the paper contrasts against. The LP is
    // trivial (sum of access bottlenecks) and the coupled algorithms
    // should reach it.
    println!(
        "static (no mobility), {:.0} s:",
        profile.span().as_secs_f64()
    );
    for algo in [CcAlgo::Cubic, CcAlgo::Lia, CcAlgo::Olia] {
        let result = Scenario::new(net.topology.clone(), net.paths())
            .with_algo(algo)
            .with_timing(profile.span(), SimDuration::from_millis(100))
            .run();
        println!(
            "  {:<6} Wi-Fi {:>5.1} Mbps + cell {:>5.1} Mbps = {:>5.1} / {:.0} Mbps  ({:.0}%)",
            algo.name(),
            result.per_path_steady_mbps[0],
            result.per_path_steady_mbps[1],
            result.steady_total_mbps(),
            result.lp.total_mbps,
            result.efficiency() * 100.0,
        );
    }

    // Mobile view: the same substrate under the compiled fault schedule.
    // `run_mobility` pairs each mobile run with its fault-free twin.
    println!(
        "\nunder the mobility schedule ({} hard handovers):",
        profile.cycles
    );
    for algo in [CcAlgo::Lia, CcAlgo::Olia] {
        let run = run_mobility(algo, 1);
        let total = (run.wifi_bytes + run.cell_bytes).max(1) as f64;
        println!(
            "  {:<6} {:>5.1} of {:>5.1} Mbps retained ({:>4.1}%), {:.0}% of bytes via cellular",
            run.algo.name(),
            run.mobile_mbps,
            run.static_mbps,
            100.0 * run.mobile_mbps / run.static_mbps,
            100.0 * run.cell_bytes as f64 / total,
        );
    }
    println!(
        "\nWith disjoint paths even the coupled algorithms aggregate — the hard\n\
         case in the paper is specifically *overlapping* paths — and mobility\n\
         is where the second subflow pays off: the cellular path carries the\n\
         connection across every Wi-Fi outage."
    );
}
