//! Full Figure-2 reproduction: the three sub-figures of the paper, rendered
//! as terminal charts, plus the Results-section comparison in miniature.
//!
//! Run: `cargo run --example paper_figure2 --release`

use mptcp_overlap::overlap_core::FIG2_SEED;
use mptcp_overlap::prelude::*;

fn main() {
    // (a) CUBIC at 100 ms sampling over 4 s.
    let a = fig2a(FIG2_SEED);
    print!("{}", render_run("Figure 2a — CUBIC, 100 ms bins", &a));
    println!();

    // (b) OLIA at 100 ms sampling over 4 s, plus the long view the paper
    //     mentions (convergence after ~20 s).
    let b = fig2b(FIG2_SEED);
    print!("{}", render_run("Figure 2b — OLIA, 100 ms bins", &b));
    println!();
    let b_long = fig2b_long(FIG2_SEED);
    print!("{}", render_run("Figure 2b' — OLIA over 25 s", &b_long));
    println!();

    // (c) CUBIC at 10 ms sampling over the first 0.5 s.
    let c = fig2c(FIG2_SEED);
    print!("{}", render_run("Figure 2c — CUBIC detail, 10 ms bins", &c));

    // Summary in the spirit of the paper's Section 3.
    println!("\n== Section 3 summary (single seed) ==");
    for (name, r) in [("CUBIC", &a), ("OLIA", &b)] {
        println!(
            "{name:<6} steady {:>5.1} / {:.0} Mbps ({:.0}%), {}",
            r.steady_total_mbps(),
            r.lp.total_mbps,
            r.efficiency() * 100.0,
            match r.convergence.converged_at {
                Some(t) => format!("in the optimum band from t = {:.2} s", t.as_secs_f64()),
                None => "did not reach the optimum band in this window".to_string(),
            }
        );
    }
}
