//! Quickstart: build the paper's network, run MPTCP with CUBIC over its
//! three overlapping paths, and compare the measured rates with the linear-
//! programming optimum.
//!
//! Run: `cargo run --example quickstart --release`

use mptcp_overlap::prelude::*;

fn main() {
    // 1. The paper's Figure-1 network: six nodes, three paths, every pair
    //    of paths sharing one bottleneck (40 / 60 / 80 Mbps).
    let net = PaperNetwork::new();
    println!("{}", net.topology);
    for (i, p) in net.paths.iter().enumerate() {
        println!(
            "Path {}: {}  ({} hops, raw bottleneck {})",
            i + 1,
            p.display(&net.topology),
            p.hop_count(),
            p.raw_capacity(&net.topology)
        );
    }

    // 2. The ground truth: the max-throughput linear program.
    let lp = net.lp_optimum();
    println!(
        "\nLP optimum: {:.0} Mbps, split {:?}\n",
        lp.total_mbps, lp.per_path_mbps
    );

    // 3. Simulate MPTCP (uncoupled CUBIC, minRTT scheduler, iperf-style
    //    unlimited source) for four seconds — the paper's Figure 2a setup.
    let result = Scenario {
        default_path: net.default_path, // Path 2, the lowest-RTT route
        ..Scenario::new(net.topology, net.paths)
    }
    .with_algo(CcAlgo::Cubic)
    .run();

    // 4. Report.
    print!(
        "{}",
        render_run("quickstart — MPTCP/CUBIC on the paper network", &result)
    );
    println!(
        "\nJain fairness of the steady split: {:.3}",
        simtrace::jain_fairness(&result.per_path_steady_mbps)
    );
}

// Re-export for the doc reference above.
use mptcp_overlap::simtrace;
