//! Offline, deterministic stand-in for `proptest`.
//!
//! The real proptest is unavailable in this build environment (no registry
//! access). This crate reimplements the subset the workspace's property
//! tests use — [`Strategy`], `any`, integer/float range strategies, tuple
//! strategies, [`collection::vec`], [`option::of`], `prop_map`, the
//! [`proptest!`] macro and the `prop_assert*` macros — with one deliberate
//! behavioural difference: case generation is **fully deterministic**. Each
//! test's RNG is seeded from the test's name, so a failing case reproduces
//! on every run and on every machine with no persisted regression files.
//! There is no shrinking; the failure report prints the case index and the
//! generated inputs' `Debug` form where available.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64), seeded from the test name.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        // Multiplicative range reduction; bias is negligible for test-size bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. The real proptest's `Strategy` also carries shrinking
/// machinery; this stub only generates.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy generating any value of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full range of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, spanning several orders of magnitude.
        (rng.next_f64() - 0.5) * 2e6
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: exact, half-open, or inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(strategy, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.next_below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (50% `Some`, like proptest's default).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Per-test configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (plain `assert!` in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (plain `assert_eq!` in this stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Define deterministic property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0u32..100, flag in any::<bool>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u32..17,
            y in 5usize..=9,
            f in -2.0f64..2.0,
            v in crate::collection::vec(any::<bool>(), 2..5),
            o in crate::option::of(0u64..10),
            t in (1u8..4, any::<u16>()).prop_map(|(a, b)| (a as u32, b)),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            if let Some(i) = o { prop_assert!(i < 10); }
            prop_assert!((1..4).contains(&t.0));
        }
    }
}
