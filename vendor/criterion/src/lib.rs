//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable in this build environment, so this crate
//! provides the API subset the workspace's benches use — [`Criterion`],
//! `benchmark_group`, `bench_function`, [`Bencher::iter`], `sample_size`,
//! `finish`, and the [`criterion_group!`]/[`criterion_main!`] macros — as a
//! plain wall-clock runner: each benchmark is timed over a fixed number of
//! batches and the mean per-iteration time is printed. No statistics,
//! plots, or baselines. Bench binaries still accept (and ignore) the
//! `--bench` flag cargo passes.
//!
//! Note: this crate intentionally uses `std::time::Instant` — it measures
//! real elapsed time and is not part of the simulation, which must stay on
//! virtual time (`simlint` enforces that for the sim crates only).

#![forbid(unsafe_code)]

use std::time::Instant;

/// Re-export for benches that use `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            samples: 20,
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed batches per benchmark (criterion's "samples").
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time one benchmark closure.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters_per_batch: 1,
            total_nanos: 0,
            total_iters: 0,
        };
        // Warm-up batch; also sizes batches so short closures are timed in bulk.
        f(&mut b);
        b.calibrate();
        b.total_nanos = 0;
        b.total_iters = 0;
        for _ in 0..self.samples {
            f(&mut b);
        }
        let mean = b.total_nanos as f64 / b.total_iters.max(1) as f64;
        println!(
            "  {name:<32} {:>12.1} ns/iter ({} iters)",
            mean, b.total_iters
        );
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timer handed to the closure.
pub struct Bencher {
    iters_per_batch: u64,
    total_nanos: u128,
    total_iters: u64,
}

impl Bencher {
    /// Run and time the routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_batch {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos();
        self.total_iters += self.iters_per_batch;
    }

    /// After the warm-up batch, pick a batch size targeting ~10 ms per batch.
    fn calibrate(&mut self) {
        let per_iter = self.total_nanos / u128::from(self.total_iters.max(1));
        self.iters_per_batch = (10_000_000 / per_iter.max(1)).clamp(1, 100_000) as u64;
    }
}

/// Bundle benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes `--bench`; a real criterion also parses filters.
            let _args: Vec<String> = std::env::args().collect();
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_a_trivial_bench() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("noop", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls > 0);
    }
}
