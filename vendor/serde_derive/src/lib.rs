//! Offline no-op stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on plain-old-data types
//! but never serializes through a serde data format inside this repository
//! (no `serde_json`/`bincode` dependency exists). This proc-macro crate
//! accepts the same derive syntax — including `#[serde(...)]` field and
//! container attributes — and expands to nothing; the sibling `serde` stub
//! provides blanket trait impls so `T: Serialize` bounds remain satisfied.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
