//! Offline stand-in for `serde`.
//!
//! This build environment has no access to crates.io, and nothing in the
//! workspace actually drives a serde serializer (there is no data-format
//! crate in the dependency graph) — the derives exist so downstream users
//! of the simulator types *could* serialize them. This stub keeps the same
//! source-level API surface:
//!
//! * `Serialize` / `Deserialize` marker traits with blanket impls, so any
//!   `T: Serialize` bound is satisfied;
//! * re-exported no-op derive macros from the sibling `serde_derive` stub.
//!
//! Swapping the real serde back in is a two-line change in the workspace
//! `Cargo.toml`; no source file needs to change.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
