//! Offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset the workspace uses: [`Bytes`] as a cheaply
//! clonable immutable buffer (`Arc<[u8]>` under the hood), [`BytesMut`] as a
//! growable builder, and the [`Buf`]/[`BufMut`] cursor traits with the
//! big-endian integer accessors the TCP wire codec needs. Semantics match
//! the real crate for this subset; swap the real dependency back in via the
//! workspace `Cargo.toml` when a registry is available.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build wire encodings.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Implemented for `&[u8]`, advancing the
/// slice as values are consumed (as the real crate does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// True if any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read a `u8`. Panics if exhausted.
    fn get_u8(&mut self) -> u8;

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16;

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32;

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_first().expect("buffer exhausted");
        *self = rest;
        *head
    }

    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        let v = u16::from_be_bytes([head[0], head[1]]);
        *self = rest;
        v
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let v = u32::from_be_bytes([head[0], head[1], head[2], head[3]]);
        *self = rest;
        v
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let mut b = [0u8; 8];
        b.copy_from_slice(head);
        *self = rest;
        u64::from_be_bytes(b)
    }
}

/// Write cursor producing big-endian encodings.
pub trait BufMut {
    /// Append a `u8`.
    fn put_u8(&mut self, v: u8);

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::with_capacity(15);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 15);
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0xBEEF);
        assert_eq!(cur.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64(), 0x0102_0304_0506_0708);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(Bytes::new().len(), 0);
    }
}
